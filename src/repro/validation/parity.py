"""Differential parity matrix: batch vs legacy engine across the whole zoo.

The fast/batch execution engine (PRs 1-3) is only trustworthy if it is
bit-identical to the legacy per-object engine *everywhere*, not just on the
radix-centric scenarios the KIPS harness watches.  This module is the
McKeeman-style differential-testing subsystem that enforces that: it
enumerates a configuration lattice —

* every registered page-table design
  (:func:`repro.pagetables.factory.registered_kinds`),
* a workload family per behaviour class (translation-bound GUPS,
  allocation/fault-bound LLM inference — the family that exercises THP,
  khugepaged and reclaim),
* core count (1 and 2 — the multi-core orchestrator has its own
  interleaving and kernel-stream routing),
* OS feature toggles (THP on/off, swap pressure on/off),
* a virtualization axis: native points plus virtualised points over a
  guest-backend x host-backend subset (guest MimicOS over a hypervisor
  MimicOS, 2-D translation with a nested TLB, two-level shootdowns —
  including host-swap-pressure points where hypervisor reclaim remaps the
  frames backing guest RAM),

— runs each point once per engine under identical seeds, and diffs the full
statistics report field by field.  A mismatch produces a structured
:class:`DivergenceRecord` (the configuration, the first diverging counter in
sorted order and both values) rather than a bare assert, so a failure names
the exact configuration and statistic to chase.

Three consumers:

* ``tests/test_parity_matrix.py`` — an always-on tier-1 sampler over a
  seeded ~40-point subset of the lattice (kept well under 30 s);
* ``python -m repro.validation.parity --full`` — the full matrix, fanned
  across host processes by the fault-tolerant experiment service
  (:mod:`repro.experiments.service`; ``--store DIR`` makes the run
  resumable and caches every completed point content-addressed);
* ``benchmarks/perf/parity_bench.py`` — records per-backend batch-vs-legacy
  speedups into ``BENCH_perf.json`` so the perf trajectory covers every
  design, not just radix.
"""

from __future__ import annotations

import argparse
import json
import time
import zlib
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.addresses import MB
from repro.common.config import (
    PageTableConfig,
    SystemConfig,
    VirtualizationConfig,
    scaled_system_config,
)
from repro.common.rng import DeterministicRNG
from repro.common.stats import LatencyDistribution
from repro.core.report import SimulationReport
from repro.pagetables.factory import nested_capable_kinds, registered_kinds

#: Keys whose values legitimately differ between engines (host-side timing
#: and fast-path diagnostics) and are therefore excluded from the diff.
HOST_ONLY_KEYS = ("host_seconds", "fast_path", "kips")

#: Workload families of the lattice: family name -> (registry name, kwargs).
#: Sizes are deliberately small — a parity point must answer in a few
#: hundred milliseconds so the sampled matrix stays inside the tier-1 walk.
#: ``gups`` is the translation-bound class (TLB/walk-heavy over a prefaulted
#: footprint); ``llm`` is the allocation-bound class whose faults drive THP,
#: khugepaged collapse and (under pressure) reclaim — the paths where the
#: stale-translation bugs this harness exists to catch actually live.
WORKLOAD_FAMILIES: Dict[str, Tuple[str, Dict[str, object]]] = {
    "gups": ("RND", {"footprint_bytes": 2 * MB, "memory_operations": 500,
                     "prefault": True, "seed": 3}),
    "llm": ("Bagel", {"scale": 0.04, "seed": 9}),
    # Guest-collapse family (virtualised points): small-arena layout forces
    # 4 KB guest faults, so guest khugepaged collapses the touched 2 MB
    # region *mid-run* and the hot phase then re-touches it — the sequence
    # that turns a missing nested-TLB invalidation into stale 4 KB combined
    # translations shadowed differently by the two engines.
    "guestmix": ("GuestMix", {"footprint_bytes": 4 * MB, "vma_bytes": 256 << 10,
                              "interleave_regions": 2, "mix_per_cold": 2,
                              "hot_operations": 1500, "seed": 7}),
}

#: Multi-process scenario (and its kwargs) used for the cores=2 axis.
MULTICORE_SCENARIO = ("contention_pair",
                      {"footprint_bytes": 2 * MB, "memory_operations": 500,
                       "seed": 3})

#: Guest scenario used by the virtualised multi-core axis.
VIRTUALIZED_MULTICORE_SCENARIO = ("virtualized_guests",
                                  {"count": 2, "footprint_bytes": 2 * MB,
                                   "hot_operations": 400, "seed": 3})


@dataclass(frozen=True)
class ParityPoint:
    """One lattice configuration, compared across both engines.

    ``page_table_kind`` is the native design — or, on virtualised points,
    the *host* (extended/nested) design backing guest RAM, with
    ``guest_kind`` naming the design the guest kernel gives its processes.
    ``swap_pressure`` on a virtualised point squeezes the *hypervisor*, so
    host reclaim remaps the frames backing guest RAM mid-run — the path the
    two-level shootdown wiring exists for.
    """

    page_table_kind: str
    family: str
    cores: int = 1
    thp: bool = True
    swap_pressure: bool = False
    virtualized: bool = False
    guest_kind: str = "radix"

    @property
    def name(self) -> str:
        name = (f"{self.page_table_kind}/{self.family}/c{self.cores}"
                f"/thp={'on' if self.thp else 'off'}"
                f"/swap={'on' if self.swap_pressure else 'off'}")
        if self.virtualized:
            name += f"/virt=guest:{self.guest_kind}"
        return name


@dataclass
class DivergenceRecord:
    """A batch-vs-legacy mismatch: where it happened and what diverged."""

    point: str
    #: First diverging statistic in sorted field order.
    field: str
    legacy_value: object
    batch_value: object
    #: Total number of diverging fields (the first is usually the cause,
    #: the rest downstream fallout).
    diverging_fields: int

    def __str__(self) -> str:
        return (f"{self.point}: {self.field} diverged "
                f"(legacy={self.legacy_value!r}, batch={self.batch_value!r}; "
                f"{self.diverging_fields} fields total)")


# --------------------------------------------------------------------- #
# Lattice enumeration
# --------------------------------------------------------------------- #
def full_lattice() -> List[ParityPoint]:
    """Every lattice point: kind x family x cores x THP x swap x virt.

    The two-core axis runs the multi-process contention scenario (one
    runnable process per core); swap pressure is exercised on the
    single-core axis, where reclaim ordering is deterministic per point.
    The virtualization axis (see :func:`virtualized_lattice`) adds points
    running the workload inside a guest VM over a guest x host backend
    subset.
    """
    points: List[ParityPoint] = []
    for kind in registered_kinds():
        for family in WORKLOAD_FAMILIES:
            for thp in (True, False):
                for swap_pressure in (False, True):
                    points.append(ParityPoint(kind, family, cores=1, thp=thp,
                                              swap_pressure=swap_pressure))
        for thp in (True, False):
            points.append(ParityPoint(kind, "multicore", cores=2, thp=thp))
    points.extend(virtualized_lattice())
    return points


def virtualized_lattice() -> List[ParityPoint]:
    """The virtualization slice: guest-backend x host-backend subset.

    Only walk-capable designs participate (intermediate-address schemes
    never reach the nested walker).  The subset is two sweeps through the
    radix anchor — guest radix over every capable host design, and every
    capable guest design over a radix host — plus feature-toggle points on
    the radix/radix anchor: guest THP off, *host* swap pressure (hypervisor
    reclaim remaps the frames backing guest RAM mid-run, exercising the
    two-level shootdown), and a two-core guest co-run.
    """
    points: List[ParityPoint] = []
    for kind in nested_capable_kinds():
        points.append(ParityPoint(kind, "gups", virtualized=True, guest_kind="radix"))
        points.append(ParityPoint("radix", "guestmix", virtualized=True,
                                  guest_kind=kind))
    points.append(ParityPoint("radix", "gups", thp=False, virtualized=True))
    points.append(ParityPoint("radix", "llm", swap_pressure=True, virtualized=True))
    points.append(ParityPoint("radix", "guestmix", swap_pressure=True,
                              virtualized=True))
    points.append(ParityPoint("radix", "multicore", cores=2, virtualized=True))
    return points


#: Minimum virtualised points every sampled subset must carry.
MIN_VIRTUALIZED_SAMPLE = 4


def sample_lattice(size: int = 40, seed: int = 2025) -> List[ParityPoint]:
    """A deterministic ``size``-point subset covering every page-table kind.

    The sample is seeded (never Python's salted ``hash``), shuffled, and
    then selected so that each registered design appears at least once and
    at least :data:`MIN_VIRTUALIZED_SAMPLE` virtualised points are included
    before the remainder fills up in shuffled order — the tier-1 sampler
    must never silently drop a backend (or the virtualization axis) from
    coverage, so ``size`` is raised to the coverage floor when asked for
    less.
    """
    points = full_lattice()
    rng = DeterministicRNG(seed)
    rng.shuffle(points)
    selected: List[ParityPoint] = []
    covered_kinds = set()
    virtualized_count = 0
    for point in points:
        if point.page_table_kind not in covered_kinds:
            covered_kinds.add(point.page_table_kind)
            selected.append(point)
            virtualized_count += point.virtualized
    for point in points:
        if virtualized_count >= MIN_VIRTUALIZED_SAMPLE:
            break
        if point.virtualized and point not in selected:
            selected.append(point)
            virtualized_count += 1
    size = max(size, len(selected))
    for point in points:
        if len(selected) >= size:
            break
        if point not in selected:
            selected.append(point)
    return selected[:size]


# --------------------------------------------------------------------- #
# Running one point
# --------------------------------------------------------------------- #
def point_seed(point: ParityPoint) -> int:
    """Deterministic per-point seed, identical for both engines."""
    return zlib.crc32(point.name.encode("utf-8")) & 0x7FFFFFFF


def build_config(point: ParityPoint, engine: str) -> SystemConfig:
    """The (small) system configuration one parity point simulates.

    Swap pressure is created the way the kernel actually meets it: a small
    physical memory with a low reclaim threshold, so kswapd-style swap-outs
    fire during the run instead of requiring a footprint too large for a
    sub-second simulation.  On virtualised points the pressure squeezes the
    *hypervisor* (the system MimicOS config), so host reclaim swaps out the
    frames backing guest RAM — guest-side THP stays controlled through the
    virtualization config.
    """
    config = scaled_system_config(
        name=f"parity-{point.name}",
        physical_memory_bytes=96 * MB if point.swap_pressure else 192 * MB,
        # On virtualised points the host THP policy stays on (guest-RAM
        # backing realistically uses huge frames); the point's THP toggle
        # governs the *guest* kernel instead.
        thp_policy="linux" if (point.thp or point.virtualized) else "never",
        fragmentation_target=1.0)
    config = config.with_page_table(PageTableConfig(kind=point.page_table_kind))
    if point.swap_pressure:
        # Virtualised points lower the threshold further: only the touched
        # guest pages occupy host memory (lazy backing), so the reclaim
        # trip-wire must sit beneath that smaller footprint for hypervisor
        # swap-outs of guest-RAM backing to actually fire.
        config = config.with_mimicos(replace(config.mimicos,
                                             swap_threshold=0.10 if point.virtualized
                                             else 0.30,
                                             swap_size_bytes=32 * MB))
    if point.virtualized:
        config = config.with_virtualization(VirtualizationConfig(
            enabled=True,
            guest_memory_bytes=128 * MB,
            guest_page_table=PageTableConfig(kind=point.guest_kind),
            guest_thp_policy="linux" if point.thp else "never",
            # The nested TLB must out-reach the (scaled-down) TLB hierarchy
            # to serve re-walks after L2-TLB evictions — the role the EPT
            # paging-structure caches play on real cores.  It is also what
            # makes a *stale* nested entry reachable at all, which the
            # nested-invalidation sensitivity test depends on.
            nested_tlb_entries=1024))
    return config.with_simulation(replace(config.simulation, engine=engine))


def _run_engine(point: ParityPoint, engine: str) -> SimulationReport:
    # Imports live inside the worker entry point (the pool pattern the
    # sweep runner established) so workers are self-reliant.
    from repro.core.multicore import MultiCoreVirtuoso
    from repro.core.virtuoso import Virtuoso
    from repro.workloads.multiproc import build_multiprocess_scenario
    from repro.workloads.registry import build_workload

    config = build_config(point, engine)
    seed = point_seed(point)
    if point.cores > 1:
        scenario, kwargs = (VIRTUALIZED_MULTICORE_SCENARIO if point.virtualized
                            else MULTICORE_SCENARIO)
        system = MultiCoreVirtuoso(config, num_cores=point.cores, seed=seed)
        return system.run(build_multiprocess_scenario(scenario, **kwargs)).merged
    workload_name, kwargs = WORKLOAD_FAMILIES[point.family]
    system = Virtuoso(config, seed=seed)
    return system.run(build_workload(workload_name, **kwargs))


def flatten_stats(report: SimulationReport) -> Dict[str, object]:
    """Every simulated statistic of a report as a flat ``path -> value`` map.

    Host-side values (wall-clock timings, VPN-cache diagnostics) are
    excluded: they differ between engines by design.
    """
    flat: Dict[str, object] = {}

    def visit(node: object, prefix: str) -> None:
        if isinstance(node, LatencyDistribution):
            # Compare the distribution sample-exactly, as JSON-able scalars.
            visit({"count": node.count, "total": node.total,
                   "samples": list(node.samples)}, prefix)
        elif isinstance(node, dict):
            for key, value in node.items():
                if key in HOST_ONLY_KEYS:
                    continue
                visit(value, f"{prefix}{key}.")
        elif isinstance(node, (list, tuple)):
            for index, value in enumerate(node):
                visit(value, f"{prefix}{index}.")
        else:
            flat[prefix[:-1]] = node

    top = {field: value for field, value in vars(report).items()
           if field not in ("details", "workload", "config_name") + tuple(HOST_ONLY_KEYS)}
    visit(top, "report.")
    visit(report.details, "details.")
    return flat


def diff_stats(legacy: Dict[str, object],
               batch: Dict[str, object]) -> List[Tuple[str, object, object]]:
    """Fields whose values differ, in sorted field order."""
    return [(field, legacy.get(field), batch.get(field))
            for field in sorted(set(legacy) | set(batch))
            if legacy.get(field) != batch.get(field)]


def run_parity_point(point: ParityPoint) -> Dict[str, object]:
    """Run one point on both engines and diff; returns a picklable digest."""
    start = time.perf_counter()
    legacy = flatten_stats(_run_engine(point, "legacy"))
    batch = flatten_stats(_run_engine(point, "batch"))
    diffs = diff_stats(legacy, batch)
    digest: Dict[str, object] = {
        "point": point.name,
        "config": asdict(point),
        "identical": not diffs,
        "fields_compared": len(set(legacy) | set(batch)),
        "host_seconds": round(time.perf_counter() - start, 4),
        "divergence": None,
    }
    if diffs:
        field, legacy_value, batch_value = diffs[0]
        digest["divergence"] = asdict(DivergenceRecord(
            point=point.name, field=field, legacy_value=legacy_value,
            batch_value=batch_value, diverging_fields=len(diffs)))
    return digest


def divergence_of(digest: Dict[str, object]) -> Optional[DivergenceRecord]:
    """Rehydrate the digest's divergence record (None when identical)."""
    raw = digest.get("divergence")
    if raw is None:
        return None
    return DivergenceRecord(**raw)


# --------------------------------------------------------------------- #
# Matrix runner
# --------------------------------------------------------------------- #
#: Content-address schema tag for parity jobs in the experiment service's
#: result store (bump when the parity digest layout changes).
PARITY_JOB_SCHEMA = "parity_point/v1"


def parity_job_key(point: ParityPoint) -> str:
    """The content address of a parity point in the result store."""
    from repro.experiments.store import content_key

    return content_key({"schema": PARITY_JOB_SCHEMA, "point": asdict(point)})


def run_matrix(points: Sequence[ParityPoint],
               workers: Optional[int] = None,
               store_root: Optional[str] = None,
               server: Optional[str] = None) -> Dict[str, object]:
    """Run every point through the experiment service and summarise.

    Execution rides the fault-tolerant experiment service
    (:class:`~repro.experiments.service.ExperimentService`): points are
    picklable, each worker builds both systems itself, and results are
    merged in submission order, so the summary is byte-identical for any
    worker count.  With ``store_root`` every completed point lands
    content-addressed in a result store and a killed ``--full`` run
    resumes from its journal, re-running only the missing points.  With
    ``server`` (``host:port``) execution targets a running
    :mod:`repro.experiments.server` instead — same summary, shared store.
    """
    from repro.experiments.service import ExperimentService, Job

    if not points:
        raise ValueError("need at least one parity point")
    jobs = [Job(index=index, name=point.name, key=parity_job_key(point),
                item=point)
            for index, point in enumerate(points)]
    start = time.perf_counter()
    if server is not None:
        from repro.experiments.client import RemoteService

        with RemoteService(server, "parity_point",
                           workers=workers) as service:
            outcome = service.execute(run_parity_point, jobs)
    else:
        with ExperimentService(workers=workers, store=store_root) as service:
            outcome = service.execute(run_parity_point, jobs)
    wall_seconds = time.perf_counter() - start
    digests = [d for d in outcome["results"] if d is not None]
    divergences = [d["divergence"] for d in digests if d["divergence"] is not None]
    return {
        "schema": "parity_matrix/v1",
        "points": len(digests),
        "identical": sum(1 for d in digests if d["identical"]),
        "divergences": divergences,
        "wall_seconds": round(wall_seconds, 4),
        "service": outcome["counters"],
        "results": digests,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validation.parity",
        description="Differential batch-vs-legacy parity across the page-table zoo")
    parser.add_argument("--full", action="store_true",
                        help="run the full lattice (default: the tier-1 sample)")
    parser.add_argument("--virtualized", action="store_true",
                        help="run only the virtualization slice of the lattice "
                             "(guest x host backend subset, two-level shootdowns)")
    parser.add_argument("--sample", type=int, default=40, metavar="N",
                        help="sample size when not running --full (default 40; "
                             "raised to the registered-design count so every "
                             "backend stays covered)")
    parser.add_argument("--seed", type=int, default=2025,
                        help="sample selection seed (default 2025)")
    parser.add_argument("--workers", type=int, default=None,
                        help="host worker processes (default: all cores)")
    parser.add_argument("--store", type=str, default=None, metavar="DIR",
                        help="experiment-service result store: completed "
                             "points are cached content-addressed and a "
                             "killed run resumes from its journal")
    parser.add_argument("--server", type=str, default=None,
                        metavar="HOST:PORT",
                        help="target a running experiment server instead of "
                             "the in-process service")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="write the full summary as JSON to PATH")
    parser.add_argument("--repro", type=str, default=None, metavar="FILE",
                        help="replay one banked fuzz-corpus reproducer with a "
                             "verbose field-by-field diff and exit")
    args = parser.parse_args(argv)

    if args.repro:
        # Shares the fuzzer's oracle/replay path (the exact code the shrinker
        # verified the entry with), so a repro never drifts from the fuzzer.
        from repro.validation import corpus
        from repro.validation.fuzz import format_replay, replay_entry

        entry = corpus.load_entry(args.repro)
        digest = replay_entry(entry)
        print(format_replay(entry, digest))
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(digest, handle, indent=2)
                handle.write("\n")
        return 0 if digest["outcome"] == "identical" else 1

    if args.virtualized:
        points = virtualized_lattice()
        scope = "virtualized slice"
    elif args.full:
        points = full_lattice()
        scope = "full lattice"
    else:
        points = sample_lattice(args.sample, args.seed)
        scope = f"sample of {len(points)}"
    summary = run_matrix(points, workers=args.workers, store_root=args.store,
                         server=args.server)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
    service = summary["service"]
    cached = (f", {service['cache_hits']} cached" if service["cache_hits"]
              else "")
    print(f"parity matrix: {summary['identical']}/{summary['points']} points "
          f"identical in {summary['wall_seconds']:.1f}s ({scope}{cached})")
    for raw in summary["divergences"]:
        print(f"  DIVERGENCE {DivergenceRecord(**raw)}")
    return 1 if summary["divergences"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
