"""The fuzzer's regression corpus: banked minimal reproducers.

Every divergence the scenario fuzzer (:mod:`repro.validation.fuzz`) finds is
shrunk to a minimal reproducer and banked here as one JSON file under
``tests/fuzz_corpus/``.  A tier-1 test replays the whole corpus on every
run, so each fuzzer catch becomes a permanent regression test — the same
promotion path riescue-style directed-random testing uses.

Durability contract (the fuzz job may be SIGKILLed mid-bank):

* writes go through :func:`repro.experiments.store.atomic_write_json`
  (tmp + ``os.replace``), so a reader never sees a torn entry;
* :func:`load_corpus` *skips* a truncated/corrupt/alien JSON file with a
  :class:`CorpusWarning` instead of raising — a damaged corpus entry must
  degrade coverage, never fail tier-1.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.experiments.store import atomic_write_json, content_key

#: Bumped when the reproducer layout changes incompatibly; entries with a
#: different schema tag are skipped (with a warning) rather than misread.
CORPUS_SCHEMA = "fuzz_repro/v1"

#: The banked corpus replayed by tier-1 (``tests/fuzz_corpus/``).
DEFAULT_CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "fuzz_corpus"


class CorpusWarning(UserWarning):
    """A corpus entry was skipped (corrupt, truncated, or wrong schema)."""


def entry_name(entry: Dict[str, object]) -> str:
    """Stable filename stem for an entry: readable prefix + content hash.

    Hashing the *scenario* (not the whole entry) means re-finding the same
    minimal reproducer — possibly with different provenance metadata —
    overwrites the old file instead of accumulating duplicates.
    """
    scenario = entry["scenario"]
    ops = scenario.get("ops", [])
    label = "-".join(dict.fromkeys(op["op"] for op in ops)) or "noop"
    return f"{label}-{content_key(scenario)[:12]}"


def save_entry(entry: Dict[str, object],
               corpus_dir: Optional[Path] = None) -> Path:
    """Atomically bank ``entry``; returns the path written."""
    directory = Path(corpus_dir) if corpus_dir is not None else DEFAULT_CORPUS_DIR
    entry = dict(entry)
    entry.setdefault("schema", CORPUS_SCHEMA)
    return atomic_write_json(directory / f"{entry_name(entry)}.json", entry)


def load_entry(path: Path) -> Dict[str, object]:
    """Load one reproducer, validating the schema tag (raises on damage).

    The strict single-file loader backs ``parity --repro`` and the tests
    that demand a specific entry; the corpus-wide sweep below is the
    tolerant one.
    """
    entry = json.loads(Path(path).read_text())
    if not isinstance(entry, dict) or entry.get("schema") != CORPUS_SCHEMA:
        raise ValueError(f"{path}: not a {CORPUS_SCHEMA} corpus entry")
    if "scenario" not in entry:
        raise ValueError(f"{path}: corpus entry has no scenario")
    return entry


def load_corpus(corpus_dir: Optional[Path] = None
                ) -> Tuple[List[Tuple[Path, Dict[str, object]]], int]:
    """Every readable corpus entry in filename order, plus the skip count.

    Unreadable files — torn by a killed fuzz job, hand-truncated, or written
    by a future schema — produce a :class:`CorpusWarning` and are skipped:
    tier-1 replay must never crash on corpus damage, only lose the entry.
    """
    directory = Path(corpus_dir) if corpus_dir is not None else DEFAULT_CORPUS_DIR
    entries: List[Tuple[Path, Dict[str, object]]] = []
    skipped = 0
    if not directory.is_dir():
        return entries, skipped
    for path in sorted(directory.glob("*.json")):
        try:
            entries.append((path, load_entry(path)))
        except (ValueError, OSError) as error:
            skipped += 1
            warnings.warn(f"skipping corpus entry {path.name}: {error}",
                          CorpusWarning, stacklevel=2)
    return entries, skipped
