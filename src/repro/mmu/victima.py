"""Victima: store TLB victims in the L2 data cache.

Victima (Kanellopoulos et al., MICRO 2023) repurposes underutilised data
cache capacity to hold translations evicted from the L2 TLB.  On an L2 TLB
miss, the L2 cache is probed for a stored translation before starting a
page-table walk; a hit avoids the walk at the cost of an L2-cache access.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.addresses import PAGE_SIZE_4K
from repro.common.stats import Counter
from repro.memhier.memory_system import MemoryAccessType


class VictimaCacheTLB:
    """Translation storage backed by the L2 data cache."""

    #: Synthetic physical region used to index the stored translations into
    #: the cache (so they occupy real cache lines and can be evicted by data).
    STORAGE_BASE = 1 << 45

    def __init__(self, l2_cache):
        self.l2_cache = l2_cache
        self._entries: Dict[int, Tuple[int, int]] = {}
        self.counters = Counter()

    def _line_address(self, virtual_address: int) -> int:
        vpn = virtual_address // PAGE_SIZE_4K
        return self.STORAGE_BASE + vpn * 64

    def store_victim(self, virtual_address: int, physical_base: int, page_size: int) -> None:
        """Called when the L2 TLB evicts an entry."""
        vpn = virtual_address // page_size
        self._entries[(vpn, page_size)] = (physical_base, page_size)
        self.l2_cache.fill(self._line_address(virtual_address), request_type="translation")
        self.counters.add("victims_stored")

    def lookup(self, virtual_address: int) -> Tuple[Optional[Tuple[int, int]], int]:
        """Probe the L2 cache for a stored translation; returns (entry, latency)."""
        line = self._line_address(virtual_address)
        result = self.l2_cache.access(line, False, request_type="translation")
        latency = result.latency
        if not result.hit:
            self.counters.add("cache_misses")
            return None, latency
        for page_size in (PAGE_SIZE_4K, 2 << 20, 1 << 30):
            entry = self._entries.get((virtual_address // page_size, page_size))
            if entry is not None:
                self.counters.add("hits")
                return entry, latency
        self.counters.add("stale_lines")
        return None, latency

    def stats(self) -> Dict[str, int]:
        """Raw counter snapshot."""
        return self.counters.as_dict()
