"""Translation lookaside buffers: per-page-size L1 TLBs and a unified L2 TLB.

The hierarchy mirrors Table 4: a 128-entry L1 instruction TLB, split L1 data
TLBs for 4 KB and 2 MB pages, and a 2048-entry 16-way unified L2 TLB holding
both page sizes (1 GB translations are also accepted by the L2 TLB, which is
how modern cores behave).  The L2 TLB's misses-per-kilo-instruction is one
of the validation metrics of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.addresses import PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.config import TLBConfig
from repro.common.stats import Counter


@dataclass(slots=True)
class TLBLookupResult:
    """Outcome of a TLB hierarchy lookup."""

    hit: bool
    latency: int
    level: str = "miss"
    physical_base: int = 0
    page_size: int = PAGE_SIZE_4K


class TLB:
    """One set-associative TLB holding translations for specific page sizes."""

    def __init__(self, config: TLBConfig):
        self.config = config
        self.name = config.name
        self.latency = config.latency
        self.page_sizes = tuple(config.page_sizes)
        self.num_sets = config.sets
        self.associativity = config.associativity
        #: One dict per set: vpn tag -> (physical base, page size, lru stamp)
        self._sets: List[Dict[int, Tuple[int, int, int]]] = [dict() for _ in range(self.num_sets)]
        self._clock = 0
        self.counters = Counter()
        #: Bumped whenever the TLB's *contents* change (fill, invalidate,
        #: flush).  The MMU's VPN translation cache watches this to detect
        #: that a cached L1 hit may no longer replay identically.
        self.version = 0
        self._c_lookups = self.counters.hot("lookups")
        self._c_hits = self.counters.hot("hits")
        self._c_misses = self.counters.hot("misses")
        self._c_fills = self.counters.hot("fills")
        self._c_evictions = self.counters.hot("evictions")

    def _index_and_tag(self, virtual_address: int, page_size: int) -> Tuple[int, int]:
        vpn = virtual_address // page_size
        return vpn % self.num_sets, vpn

    def supports(self, page_size: int) -> bool:
        """True if this TLB can hold translations of ``page_size``."""
        return page_size in self.page_sizes

    def lookup(self, virtual_address: int) -> Optional[Tuple[int, int]]:
        """Return (physical base, page size) on a hit, None on a miss."""
        self._clock += 1
        self._c_lookups[0] += 1
        for page_size in self.page_sizes:
            vpn = virtual_address // page_size
            entries = self._sets[vpn % self.num_sets]
            key = (vpn, page_size)
            entry = entries.get(key)
            if entry is not None:
                physical_base, size, _ = entry
                entries[key] = (physical_base, size, self._clock)
                self._c_hits[0] += 1
                return physical_base, size
        self._c_misses[0] += 1
        return None

    def fill(self, virtual_address: int, physical_base: int, page_size: int) -> None:
        """Insert a translation (LRU replacement within the set)."""
        if not self.supports(page_size):
            return
        self._clock += 1
        self.version += 1
        set_index, tag = self._index_and_tag(virtual_address, page_size)
        entries = self._sets[set_index]
        key = (tag, page_size)
        if key not in entries and len(entries) >= self.associativity:
            victim = min(entries, key=lambda k: entries[k][2])
            del entries[victim]
            self._c_evictions[0] += 1
        entries[key] = (physical_base, page_size, self._clock)
        self._c_fills[0] += 1

    def invalidate(self, virtual_address: int) -> None:
        """Drop any translation covering ``virtual_address`` (TLB shootdown)."""
        for page_size in self.page_sizes:
            set_index, tag = self._index_and_tag(virtual_address, page_size)
            if self._sets[set_index].pop((tag, page_size), None) is not None:
                self.version += 1
                self.counters.add("invalidations")

    def flush(self) -> None:
        """Invalidate every entry (context switch without ASIDs)."""
        for entries in self._sets:
            entries.clear()
        self.version += 1
        self.counters.add("flushes")

    def hits(self) -> int:
        """Total hits."""
        return self.counters.get("hits")

    def misses(self) -> int:
        """Total misses."""
        return self.counters.get("misses")

    def miss_rate(self) -> float:
        """Miss fraction over all lookups."""
        lookups = self.counters.get("lookups")
        return self.misses() / lookups if lookups else 0.0

    def stats(self) -> Dict[str, int]:
        """Raw counter snapshot."""
        return self.counters.as_dict()


class TLBHierarchy:
    """The paper's two-level TLB hierarchy with split L1 data TLBs."""

    def __init__(self, l1i: TLBConfig, l1d_4k: TLBConfig, l1d_2m: TLBConfig,
                 l2: TLBConfig):
        self.l1i = TLB(l1i)
        self.l1d_4k = TLB(l1d_4k)
        self.l1d_2m = TLB(l1d_2m)
        # The unified L2 TLB also accepts 1 GB translations.
        l2_sizes = tuple(sorted(set(l2.page_sizes) | {PAGE_SIZE_1G}))
        self.l2 = TLB(TLBConfig(l2.name, l2.entries, l2.associativity, l2.latency, l2_sizes))
        self.counters = Counter()
        self._c_data_lookups = self.counters.hot("data_lookups")
        self._c_instruction_lookups = self.counters.hot("instruction_lookups")
        self._c_l2_misses = self.counters.hot("l2_misses")

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def lookup_data(self, virtual_address: int) -> TLBLookupResult:
        """L1 data TLBs (both page sizes probed in parallel), then the L2 TLB."""
        self._c_data_lookups[0] += 1
        latency = self.l1d_4k.latency

        for l1 in (self.l1d_4k, self.l1d_2m):
            entry = l1.lookup(virtual_address)
            if entry is not None:
                physical_base, page_size = entry
                return TLBLookupResult(hit=True, latency=latency, level="L1",
                                       physical_base=physical_base, page_size=page_size)

        latency += self.l2.latency
        entry = self.l2.lookup(virtual_address)
        if entry is not None:
            physical_base, page_size = entry
            self._fill_l1(virtual_address, physical_base, page_size)
            return TLBLookupResult(hit=True, latency=latency, level="L2",
                                   physical_base=physical_base, page_size=page_size)
        self._c_l2_misses[0] += 1
        return TLBLookupResult(hit=False, latency=latency)

    def lookup_instruction(self, virtual_address: int) -> TLBLookupResult:
        """L1 instruction TLB, then the unified L2 TLB."""
        self._c_instruction_lookups[0] += 1
        latency = self.l1i.latency
        entry = self.l1i.lookup(virtual_address)
        if entry is not None:
            physical_base, page_size = entry
            return TLBLookupResult(hit=True, latency=latency, level="L1I",
                                   physical_base=physical_base, page_size=page_size)
        latency += self.l2.latency
        entry = self.l2.lookup(virtual_address)
        if entry is not None:
            physical_base, page_size = entry
            self.l1i.fill(virtual_address, physical_base, page_size)
            return TLBLookupResult(hit=True, latency=latency, level="L2",
                                   physical_base=physical_base, page_size=page_size)
        self._c_l2_misses[0] += 1
        return TLBLookupResult(hit=False, latency=latency)

    # ------------------------------------------------------------------ #
    # Fills / invalidations
    # ------------------------------------------------------------------ #
    def fill(self, virtual_address: int, physical_base: int, page_size: int,
             instruction: bool = False) -> None:
        """Install a translation after a successful walk."""
        self.l2.fill(virtual_address, physical_base, page_size)
        if instruction:
            self.l1i.fill(virtual_address, physical_base, page_size)
        else:
            self._fill_l1(virtual_address, physical_base, page_size)

    def _fill_l1(self, virtual_address: int, physical_base: int, page_size: int) -> None:
        if page_size == PAGE_SIZE_4K:
            self.l1d_4k.fill(virtual_address, physical_base, page_size)
        elif page_size == PAGE_SIZE_2M:
            self.l1d_2m.fill(virtual_address, physical_base, page_size)
        # 1 GB translations live only in the L2 TLB, as on real cores.

    def invalidate(self, virtual_address: int) -> None:
        """Shoot down any entry covering ``virtual_address``."""
        for tlb in (self.l1i, self.l1d_4k, self.l1d_2m, self.l2):
            tlb.invalidate(virtual_address)

    def flush(self) -> None:
        """Flush the whole hierarchy."""
        for tlb in (self.l1i, self.l1d_4k, self.l1d_2m, self.l2):
            tlb.flush()

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def l2_misses(self) -> int:
        """Number of L2 TLB misses (numerator of the MPKI metric in Fig. 10)."""
        return self.counters.get("l2_misses")

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-TLB counter snapshot."""
        return {
            "hierarchy": self.counters.as_dict(),
            "l1i": self.l1i.stats(),
            "l1d_4k": self.l1d_4k.stats(),
            "l1d_2m": self.l1d_2m.stats(),
            "l2": self.l2.stats(),
        }
