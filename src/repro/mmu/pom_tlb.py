"""A large software-managed, in-DRAM TLB (part-of-memory TLB).

Ryoo et al. propose a very large TLB that lives in main memory and is probed
after the on-chip TLBs miss but before the page-table walk.  A hit costs one
memory access (usually an LLC or DRAM access to the table); a miss adds that
access on top of the walk.  Because the table is orders of magnitude larger
than the on-chip TLBs, most walks are avoided for workloads whose hot set
exceeds the L2 TLB reach.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.addresses import PAGE_SIZE_4K
from repro.common.stats import Counter
from repro.memhier.memory_system import MemoryAccessType


class PartOfMemoryTLB:
    """A software-managed TLB stored in a region of physical memory."""

    ENTRY_SIZE = 16

    def __init__(self, entries: int = 1 << 20, base_address: int = 1 << 44):
        self.entries = entries
        self.base_address = base_address
        self._table: Dict[int, Tuple[int, int]] = {}
        self.counters = Counter()

    def _slot(self, virtual_address: int) -> int:
        return (virtual_address // PAGE_SIZE_4K) % self.entries

    def _slot_address(self, slot: int) -> int:
        return self.base_address + slot * self.ENTRY_SIZE

    def lookup(self, virtual_address: int, memory) -> Tuple[Optional[Tuple[int, int]], int]:
        """Probe the in-memory table; returns ((physical, size) or None, latency)."""
        slot = self._slot(virtual_address)
        latency = memory.access_address(self._slot_address(slot), False, MemoryAccessType.PTW)
        entry = self._table.get(slot)
        vpn = virtual_address // PAGE_SIZE_4K
        if entry is not None and entry[0] // PAGE_SIZE_4K == vpn:
            self.counters.add("hits")
            return (entry[1], PAGE_SIZE_4K), latency
        self.counters.add("misses")
        return None, latency

    def fill(self, virtual_address: int, physical_base: int, memory) -> None:
        """Install a translation (one memory write to the table)."""
        slot = self._slot(virtual_address)
        self._table[slot] = (virtual_address, physical_base)
        memory.access_address(self._slot_address(slot), True, MemoryAccessType.PTW)
        self.counters.add("fills")

    def hit_rate(self) -> float:
        """Hit fraction over all probes."""
        hits = self.counters.get("hits")
        total = hits + self.counters.get("misses")
        return hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        """Raw counter snapshot."""
        return self.counters.as_dict()
