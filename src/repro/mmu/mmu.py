"""The memory-management unit: translation plus the data access itself.

For every memory operand the core model calls :meth:`MMU.access_data`.  The
MMU looks up the TLB hierarchy, walks the active translation structure on a
miss (paying for the walk's memory accesses through the shared memory
hierarchy), reports page faults to the OS through a fault callback installed
by the Virtuoso orchestrator (which runs MimicOS and injects the handler's
instruction stream, returning the fault's latency), retries the walk, and
finally performs the data access.

Schemes that replace the TLBs (Midgard, VBI) follow their own path: a cheap
frontend translation before the access and a backend translation charged
only when the access reaches DRAM.

Fast path
---------

:meth:`MMU.access_data_fast` is the batch engine's entry point.  It consults
a flat VPN -> (page base, physical base, page size, L1 TLB slot) cache that
memoises the most recent L1 data-TLB hits.  A fast hit replays *exactly* the
side effects the slow path would produce for the same access — L1 probe
clocks, LRU stamp refresh, every counter, the translation-latency sample —
so simulated statistics are bit-identical with the cache enabled or
disabled.  The cache is strictly invalidated whenever its replay could
diverge: on :meth:`set_context`, on any TLB content change (fill,
invalidate, flush — tracked through the TLBs' ``version`` counters) and on
any page-table mutation (tracked through the page table's ``version``).
Results are returned in per-MMU scratch objects, so the hot loop performs no
allocation at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.common.addresses import PAGE_SIZE_2M, PAGE_SIZE_4K, align_down
from repro.common.stats import Counter, RunningStats
from repro.memhier.memory_system import MemoryAccessType, MemoryHierarchy, MemoryRequest
from repro.mmu.extensions import MMUExtensions
from repro.mmu.nested import NestedTranslationUnit
from repro.mmu.pom_tlb import PartOfMemoryTLB
from repro.mmu.tlb import TLBHierarchy, TLBLookupResult
from repro.mmu.tlb_prefetch import SequentialTLBPrefetcher
from repro.mmu.victima import VictimaCacheTLB
from repro.pagetables.base import PageTableBase

#: Signature of the page-fault callback: (pid, virtual address) -> (latency, handled).
FaultCallback = Callable[[int, int], Tuple[int, bool]]

#: Safety bound on the VPN cache (covers far more than the L1 TLBs' reach).
_VPN_CACHE_MAX_ENTRIES = 65536


@dataclass(slots=True)
class TranslationResult:
    """Outcome of translating one virtual address."""

    virtual_address: int
    physical_address: int = 0
    latency: int = 0
    tlb_hit: bool = False
    tlb_level: str = "miss"
    walked: bool = False
    walk_latency: int = 0
    walk_memory_accesses: int = 0
    page_fault: bool = False
    fault_latency: int = 0
    segfault: bool = False
    frontend_latency: int = 0
    backend_latency: int = 0
    page_size: int = PAGE_SIZE_4K


@dataclass(slots=True)
class MemoryOperationResult:
    """Translation plus data access for one memory operand."""

    translation: TranslationResult
    data_latency: int = 0
    served_by: str = "none"
    total_latency: int = 0


class _NestedWalkAdapter:
    """Adapts a nested (2-D) walk outcome to the ``WalkResult`` duck type.

    The guest-dimension share of the walk is reported as ``frontend_latency``
    and the host-dimension share as ``backend_latency`` — never the combined
    2-D latency in one field, which would double-count the guest walk as
    host (backend) time in per-backend attribution.  On a nested-TLB hit
    both shares are zero: no table was walked in either dimension.
    """

    __slots__ = ("found", "latency", "memory_accesses", "physical_base",
                 "page_size", "frontend_latency", "backend_latency")

    def __init__(self, nested) -> None:
        self.found = nested.found
        self.latency = nested.latency
        self.memory_accesses = nested.memory_accesses
        self.physical_base = nested.host_physical_base
        self.page_size = nested.page_size
        self.frontend_latency = nested.guest_latency
        self.backend_latency = nested.host_latency


class MMU:
    """The per-core MMU model.

    Each simulated core owns one MMU, which in turn owns that core's private
    TLB hierarchy, VPN translation cache and translation context (pid + page
    table) — so in a multi-core system every core translates against its own
    context while the page tables themselves are shared kernel state.
    ``core_index`` identifies the owning core (0 in single-core systems).
    """

    def __init__(self, tlb_hierarchy: TLBHierarchy, memory: MemoryHierarchy,
                 extensions: Optional[MMUExtensions] = None,
                 core_index: int = 0):
        self.tlbs = tlb_hierarchy
        self.memory = memory
        self.extensions = extensions or MMUExtensions()
        self.core_index = core_index
        self.counters = Counter()
        self.ptw_latency_stats = RunningStats()
        self.translation_latency_stats = RunningStats()
        self.fault_latency_stats = RunningStats()
        #: 2-D walk attribution (virtualised mode): the guest-dimension and
        #: host-dimension shares of every nested walk's latency, so
        #: per-backend parity can tell a slow guest table from a slow host
        #: (extended) table.  Both engines feed these through the same
        #: ``_walk`` call, so they are engine-invariant by construction.
        self.guest_ptw_latency_stats = RunningStats()
        self.host_ptw_latency_stats = RunningStats()

        self.pid: int = 0
        self.page_table: Optional[PageTableBase] = None
        self.fault_callback: Optional[FaultCallback] = None
        self.nested_unit: Optional[NestedTranslationUnit] = None

        self.tlb_prefetcher = SequentialTLBPrefetcher() if self.extensions.tlb_prefetch else None
        self.pom_tlb = PartOfMemoryTLB() if self.extensions.pom_tlb else None
        self.victima = VictimaCacheTLB(memory.l2) if self.extensions.victima else None

        # Hot counter cells (folded transparently on every Counter read).
        self._c_data_accesses = self.counters.hot("data_accesses")
        self._c_instruction_accesses = self.counters.hot("instruction_accesses")
        self._c_tlb_hits = self.counters.hot("tlb_hits")
        self._c_tlb_misses = self.counters.hot("tlb_misses")
        self._c_page_walks = self.counters.hot("page_walks")
        self._c_ptw_memory_accesses = self.counters.hot("ptw_memory_accesses")

        # Fast-path state: the flat VPN translation cache and the version
        # snapshots its entries are valid against.
        self.vpn_cache_enabled = self.extensions.vpn_translation_cache
        self._l1d_4k = tlb_hierarchy.l1d_4k
        self._l1d_2m = tlb_hierarchy.l1d_2m
        self._l1_latency = tlb_hierarchy.l1d_4k.latency
        self._vpn_cache: Dict[int, tuple] = {}
        #: 2M-page entries keyed at 2M granularity (one record covers the
        #: whole huge page, so THP workloads warm up after a single miss).
        self._vpn_cache_2m: Dict[int, tuple] = {}
        self._vpn_pt_source: Optional[PageTableBase] = None
        self._vpn_pt_version = -1
        self._vpn_tlb_version = -1
        #: Cumulative fast-path hits (diagnostics; not a simulated statistic).
        self.fast_hits = 0

        # Scratch result objects reused by the allocation-free fast path.
        self._scratch_translation = TranslationResult(0)
        self._scratch_op = MemoryOperationResult(translation=self._scratch_translation)

    # ------------------------------------------------------------------ #
    # Context management
    # ------------------------------------------------------------------ #
    def set_context(self, pid: int, page_table: PageTableBase,
                    flush_tlbs: bool = False) -> None:
        """Switch the MMU to another process's address space."""
        self.pid = pid
        self.page_table = page_table
        self._vpn_cache.clear()
        self._vpn_cache_2m.clear()
        self._vpn_pt_source = None if page_table is None else page_table.version_source()
        self._vpn_pt_version = -1
        self._vpn_tlb_version = -1
        if flush_tlbs:
            self.tlbs.flush()
            # Without VPID/EPT tagging a context switch also loses the
            # combined (guest-virtual -> host-physical) translations.
            if self.nested_unit is not None:
                self.nested_unit.flush()

    def migrate_in(self, pid: int, page_table: PageTableBase) -> None:
        """Context-switch for a process migrating onto this core.

        Identical to ``set_context(..., flush_tlbs=True)``; it exists to make
        the migration semantics explicit: a process that last ran on another
        core must never observe this core's stale TLB contents (this model
        has no cross-core shootdowns, so a resident translation here may
        predate unmaps performed while the process ran elsewhere), and the
        per-core VPN translation cache is dropped with the context.
        """
        self.set_context(pid, page_table, flush_tlbs=True)

    def set_fault_callback(self, callback: FaultCallback) -> None:
        """Install the OS page-fault entry point (wired up by Virtuoso)."""
        self.fault_callback = callback

    def invalidate_translation(self, pid: int, virtual_address: int) -> None:
        """Kernel-initiated TLB shootdown for one page of ``pid``.

        Called (through :meth:`repro.mimicos.kernel.MimicOS.tlb_shootdown`)
        whenever the kernel unmaps or remaps a page outside the normal
        fill path — swap-out reclaim, khugepaged collapse, THP promotion,
        munmap, restrictive-mapping evictions — so no stale translation
        survives in this core's TLBs.  Like a real IPI shootdown, only cores
        currently running ``pid``'s address space act (context switches flush
        the TLBs, so other address spaces cannot be resident here).  The TLB
        ``version`` bump performed by the invalidation also keeps the VPN
        translation cache honest, so both engines observe the unmap
        identically.
        """
        if pid != self.pid:
            return
        self.tlbs.invalidate(virtual_address)
        if self.nested_unit is not None:
            # A guest-side remap also kills the combined translation the
            # nested TLB caches for this guest-virtual page.
            self.nested_unit.invalidate(virtual_address)

    def invalidate_nested_translations(self) -> None:
        """Host-side (EPT) remap shootdown for this core.

        Called when the hypervisor remaps a frame backing guest RAM (host
        swap-out, restrictive-mapping eviction, host khugepaged collapse):
        the guest-physical -> host-physical dimension changed without naming
        any guest-virtual address, so every *combined* translation this core
        holds is suspect — the nested TLB, the L1/L2 TLBs (filled with
        host-physical bases by nested walks) and, through the TLB version
        bump, the VPN translation cache are all dropped, exactly as an
        INVEPT-triggered combined-mapping flush behaves on real hardware.
        No-op on cores not running a virtualised context.
        """
        if self.nested_unit is None:
            return
        self.nested_unit.flush()
        self.tlbs.flush()
        self.counters.add("nested_shootdowns")

    def set_nested_unit(self, nested_unit: Optional[NestedTranslationUnit]) -> None:
        """Enable two-dimensional translation through ``nested_unit``."""
        self.nested_unit = nested_unit

    # ------------------------------------------------------------------ #
    # Main access path
    # ------------------------------------------------------------------ #
    def access_data(self, virtual_address: int, is_write: bool = False,
                    pc: int = 0) -> MemoryOperationResult:
        """Translate ``virtual_address`` and perform the data access."""
        if self.page_table is None:
            raise RuntimeError("MMU has no page table; call set_context() first")
        self._c_data_accesses[0] += 1

        if self.page_table.replaces_tlbs:
            return self._access_intermediate_scheme(virtual_address, is_write, pc)

        translation = self._translate(virtual_address)
        if translation.segfault:
            return MemoryOperationResult(translation=translation,
                                         total_latency=translation.latency)

        memory = self.memory
        data_latency = memory.access_value(translation.physical_address, is_write, "data", pc)
        return MemoryOperationResult(translation=translation, data_latency=data_latency,
                                     served_by=memory.last_served_by,
                                     total_latency=translation.latency + data_latency)

    def access_data_fast(self, virtual_address: int, is_write: bool = False,
                         pc: int = 0) -> MemoryOperationResult:
        """Allocation-free :meth:`access_data` used by the batch engine.

        Returns a scratch :class:`MemoryOperationResult` that is overwritten
        by the next call — callers must consume it immediately.
        """
        cache = self._vpn_cache
        cache_2m = self._vpn_cache_2m
        if cache or cache_2m:
            if (self._vpn_pt_source.version != self._vpn_pt_version
                    or self._l1d_4k.version + self._l1d_2m.version != self._vpn_tlb_version):
                cache.clear()
                cache_2m.clear()
            else:
                entry = cache.get(virtual_address >> 12)
                if entry is None and cache_2m:
                    entry = cache_2m.get(virtual_address >> 21)
                if entry is not None:
                    # Replay the exact side effects of the slow path's L1 hit.
                    page_base, physical_base, page_size, is_2m, entries, key = entry
                    l1_4k = self._l1d_4k
                    l1_4k._clock += 1
                    l1_4k._c_lookups[0] += 1
                    if is_2m:
                        l1_4k._c_misses[0] += 1
                        l1_2m = self._l1d_2m
                        l1_2m._clock += 1
                        l1_2m._c_lookups[0] += 1
                        l1_2m._c_hits[0] += 1
                        entries[key] = (physical_base, page_size, l1_2m._clock)
                    else:
                        l1_4k._c_hits[0] += 1
                        entries[key] = (physical_base, page_size, l1_4k._clock)
                    self.tlbs._c_data_lookups[0] += 1
                    self._c_data_accesses[0] += 1
                    self._c_tlb_hits[0] += 1
                    latency = self._l1_latency
                    self.translation_latency_stats.add(latency)

                    physical_address = physical_base + (virtual_address - page_base)
                    memory = self.memory
                    data_latency = memory.access_value(physical_address, is_write, "data", pc)
                    self.fast_hits += 1

                    translation = self._scratch_translation
                    translation.virtual_address = virtual_address
                    translation.physical_address = physical_address
                    translation.latency = latency
                    translation.tlb_hit = True
                    translation.tlb_level = "L1"
                    translation.walked = False
                    translation.walk_latency = 0
                    translation.walk_memory_accesses = 0
                    translation.page_fault = False
                    translation.fault_latency = 0
                    translation.segfault = False
                    translation.frontend_latency = 0
                    translation.backend_latency = 0
                    translation.page_size = page_size
                    operation = self._scratch_op
                    operation.data_latency = data_latency
                    operation.served_by = memory.last_served_by
                    operation.total_latency = latency + data_latency
                    return operation
        return self.access_data(virtual_address, is_write, pc)

    def access_instruction(self, virtual_address: int, pc: int = 0) -> MemoryOperationResult:
        """Instruction-fetch translation and access (used per fetched line)."""
        if self.page_table is None:
            raise RuntimeError("MMU has no page table; call set_context() first")
        self._c_instruction_accesses[0] += 1
        translation = self._translate(virtual_address, instruction=True)
        if translation.segfault:
            return MemoryOperationResult(translation=translation,
                                         total_latency=translation.latency)
        memory = self.memory
        data_latency = memory.access_value(translation.physical_address, False,
                                           "instruction", pc)
        return MemoryOperationResult(translation=translation, data_latency=data_latency,
                                     served_by=memory.last_served_by,
                                     total_latency=translation.latency + data_latency)

    # ------------------------------------------------------------------ #
    # Conventional (TLB + walk) translation
    # ------------------------------------------------------------------ #
    def _translate(self, virtual_address: int, instruction: bool = False) -> TranslationResult:
        result = TranslationResult(virtual_address=virtual_address)
        lookup = (self.tlbs.lookup_instruction(virtual_address) if instruction
                  else self.tlbs.lookup_data(virtual_address))
        result.latency += lookup.latency

        if lookup.hit:
            result.tlb_hit = True
            result.tlb_level = lookup.level
            result.page_size = lookup.page_size
            result.physical_address = (lookup.physical_base
                                       + virtual_address % lookup.page_size)
            self._c_tlb_hits[0] += 1
            self.translation_latency_stats.add(result.latency)
            if not instruction and lookup.level == "L1":
                self._note_l1_data_hit(virtual_address, lookup)
            return result

        self._c_tlb_misses[0] += 1

        # Optional structures probed before the walk.
        if self.victima is not None:
            entry, latency = self.victima.lookup(virtual_address)
            result.latency += latency
            if entry is not None:
                physical_base, page_size = entry
                self._finish_walk_hit(result, virtual_address, physical_base, page_size,
                                      instruction)
                self.counters.add("victima_hits")
                return result
        if self.pom_tlb is not None:
            entry, latency = self.pom_tlb.lookup(virtual_address, self.memory)
            result.latency += latency
            if entry is not None:
                physical_base, page_size = entry
                self._finish_walk_hit(result, virtual_address, physical_base, page_size,
                                      instruction)
                self.counters.add("pom_tlb_hits")
                return result

        walk = self._walk(virtual_address)
        result.walked = True
        result.walk_latency += walk.latency
        result.walk_memory_accesses += walk.memory_accesses
        result.latency += walk.latency

        if not walk.found:
            fault_latency, handled = self._raise_page_fault(virtual_address)
            result.page_fault = True
            result.fault_latency = fault_latency
            result.latency += fault_latency
            if not handled:
                result.segfault = True
                self.counters.add("segfaults")
                self.translation_latency_stats.add(result.latency)
                return result
            walk = self._walk(virtual_address)
            result.walk_latency += walk.latency
            result.walk_memory_accesses += walk.memory_accesses
            result.latency += walk.latency
            if not walk.found:
                result.segfault = True
                self.counters.add("segfaults")
                self.translation_latency_stats.add(result.latency)
                return result

        self._finish_walk_hit(result, virtual_address, walk.physical_base, walk.page_size,
                              instruction)
        return result

    # ------------------------------------------------------------------ #
    # VPN translation cache maintenance
    # ------------------------------------------------------------------ #
    def _note_l1_data_hit(self, virtual_address: int, lookup: TLBLookupResult) -> None:
        """Memoise an L1 data-TLB hit so repeat accesses take the fast path."""
        if not self.vpn_cache_enabled:
            return
        source = self._vpn_pt_source
        if source is None:
            return
        page_size = lookup.page_size
        if page_size == PAGE_SIZE_4K:
            tlb = self._l1d_4k
            is_2m = False
        elif page_size == PAGE_SIZE_2M:
            tlb = self._l1d_2m
            is_2m = True
        else:
            return

        pt_version = source.version
        tlb_version = self._l1d_4k.version + self._l1d_2m.version
        cache = self._vpn_cache_2m if is_2m else self._vpn_cache
        if pt_version != self._vpn_pt_version or tlb_version != self._vpn_tlb_version:
            self._vpn_cache.clear()
            self._vpn_cache_2m.clear()
            self._vpn_pt_version = pt_version
            self._vpn_tlb_version = tlb_version
        elif len(cache) >= _VPN_CACHE_MAX_ENTRIES:
            cache.clear()

        vpn = virtual_address // page_size
        key = (vpn, page_size)
        entries = tlb._sets[vpn % tlb.num_sets]
        if key not in entries:
            return
        cache[vpn if is_2m else virtual_address >> 12] = \
            (vpn * page_size, lookup.physical_base, page_size, is_2m, entries, key)

    def fast_path_stats(self) -> Dict[str, int]:
        """Diagnostics for the VPN translation cache (not simulated state)."""
        return {
            "enabled": int(self.vpn_cache_enabled),
            "entries": len(self._vpn_cache) + len(self._vpn_cache_2m),
            "fast_hits": self.fast_hits,
            "core_index": self.core_index,
        }

    # ------------------------------------------------------------------ #
    # Walks, fills and faults
    # ------------------------------------------------------------------ #
    def _walk(self, virtual_address: int):
        if self.nested_unit is not None and self.extensions.nested_translation:
            nested = self.nested_unit.walk(virtual_address, self.memory)
            self._c_page_walks[0] += 1
            self._c_ptw_memory_accesses[0] += nested.memory_accesses
            self.ptw_latency_stats.add(nested.latency)
            # Attribute the two dimensions separately (a nested-TLB hit
            # walked neither table, so both shares are zero).
            self.guest_ptw_latency_stats.add(nested.guest_latency)
            self.host_ptw_latency_stats.add(nested.host_latency)
            return _NestedWalkAdapter(nested)
        walk = self.page_table.walk(virtual_address, self.memory)
        self._c_page_walks[0] += 1
        self._c_ptw_memory_accesses[0] += walk.memory_accesses
        self.ptw_latency_stats.add(walk.latency)
        return walk

    def _finish_walk_hit(self, result: TranslationResult, virtual_address: int,
                         physical_base: int, page_size: int, instruction: bool) -> None:
        result.page_size = page_size
        result.physical_address = physical_base + (virtual_address
                                                   - align_down(virtual_address, page_size))
        self._fill_tlbs(virtual_address, physical_base, page_size, instruction)
        self.translation_latency_stats.add(result.latency)

    def _fill_tlbs(self, virtual_address: int, physical_base: int, page_size: int,
                   instruction: bool) -> None:
        if self.victima is not None:
            # Capture the entry that the L2 TLB is about to evict.
            set_index, tag = self.tlbs.l2._index_and_tag(virtual_address, page_size)
            entries = self.tlbs.l2._sets[set_index]
            if len(entries) >= self.tlbs.l2.associativity:
                victim_key = min(entries, key=lambda k: entries[k][2])
                victim_base, victim_size, _ = entries[victim_key]
                self.victima.store_victim(victim_key[0] * victim_size, victim_base, victim_size)
        self.tlbs.fill(virtual_address, physical_base, page_size, instruction=instruction)
        if self.pom_tlb is not None:
            self.pom_tlb.fill(virtual_address, physical_base, self.memory)
        if self.tlb_prefetcher is not None and self.page_table is not None:
            self.tlb_prefetcher.on_fill(virtual_address, page_size, self.page_table,
                                        self.tlbs, self.memory)

    def _raise_page_fault(self, virtual_address: int) -> Tuple[int, bool]:
        self.counters.add("page_faults")
        if self.fault_callback is None:
            return 0, False
        latency, handled = self.fault_callback(self.pid, virtual_address)
        self.fault_latency_stats.add(latency)
        return latency, handled

    # ------------------------------------------------------------------ #
    # Intermediate-address schemes (Midgard, VBI)
    # ------------------------------------------------------------------ #
    def _access_intermediate_scheme(self, virtual_address: int, is_write: bool,
                                    pc: int) -> MemoryOperationResult:
        page_table = self.page_table
        result = TranslationResult(virtual_address=virtual_address)

        intermediate, frontend_latency, _ = page_table.translate_frontend(virtual_address,
                                                                          self.memory)
        result.frontend_latency += frontend_latency
        result.latency += frontend_latency

        functional = page_table.translate_functional(virtual_address)
        if intermediate is None or functional is None:
            fault_latency, handled = self._raise_page_fault(virtual_address)
            result.page_fault = True
            result.fault_latency = fault_latency
            result.latency += fault_latency
            if not handled:
                result.segfault = True
                return MemoryOperationResult(translation=result, total_latency=result.latency)
            intermediate, frontend_latency, _ = page_table.translate_frontend(virtual_address,
                                                                              self.memory)
            result.frontend_latency += frontend_latency
            result.latency += frontend_latency
            functional = page_table.translate_functional(virtual_address)
            if functional is None:
                result.segfault = True
                return MemoryOperationResult(translation=result, total_latency=result.latency)

        result.physical_address = functional
        self.translation_latency_stats.add(result.latency)

        # The caches are indexed with the intermediate address in Midgard/VBI;
        # using the functional physical address as a proxy preserves hit/miss
        # behaviour because the mapping is one-to-one.
        memory = self.memory
        data_latency = memory.access_value(functional, is_write, "data", pc)
        served_by = memory.last_served_by
        backend_latency = 0
        if served_by == "DRAM" and intermediate is not None:
            _, backend_latency, accesses = page_table.translate_backend(intermediate, self.memory)
            result.backend_latency += backend_latency
            result.walk_memory_accesses += accesses
            self._c_page_walks[0] += 1
            self.ptw_latency_stats.add(backend_latency)
        result.latency += backend_latency

        self.counters.add("data_accesses_intermediate")
        total = result.latency + data_latency
        return MemoryOperationResult(translation=result, data_latency=data_latency,
                                     served_by=served_by, total_latency=total)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def l2_tlb_misses(self) -> int:
        """L2 TLB misses (numerator of the Fig. 10 MPKI metric)."""
        return self.tlbs.l2_misses()

    def average_ptw_latency(self) -> float:
        """Mean page-table-walk latency in cycles (Fig. 3 / Fig. 10 metric)."""
        return self.ptw_latency_stats.mean

    def total_ptw_latency(self) -> float:
        """Total cycles spent walking (Fig. 13 metric)."""
        return self.ptw_latency_stats.total

    def total_translation_latency(self) -> float:
        """Total translation cycles including TLB, walks and faults."""
        return self.translation_latency_stats.total

    def stats(self) -> Dict[str, object]:
        """Counter snapshot plus latency summaries."""
        stats: Dict[str, object] = {
            "counters": self.counters.as_dict(),
            "tlbs": self.tlbs.stats(),
            "avg_ptw_latency": self.average_ptw_latency(),
            "total_ptw_latency": self.total_ptw_latency(),
            "avg_translation_latency": self.translation_latency_stats.mean,
            "page_table": self.page_table.stats() if self.page_table is not None else {},
            "fast_path": self.fast_path_stats(),
        }
        if self.nested_unit is not None:
            # 2-D attribution: which dimension of the nested walk cost what.
            stats["nested"] = {
                "unit": self.nested_unit.stats(),
                "total_guest_ptw_latency": self.guest_ptw_latency_stats.total,
                "total_host_ptw_latency": self.host_ptw_latency_stats.total,
                "avg_guest_ptw_latency": self.guest_ptw_latency_stats.mean,
                "avg_host_ptw_latency": self.host_ptw_latency_stats.mean,
            }
        return stats
