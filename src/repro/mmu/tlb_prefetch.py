"""Sequential TLB prefetching.

A distance-1 sequential prefetcher in the spirit of agile TLB prefetching:
after a demand L2-TLB fill for virtual page N, the translation for page N+1
is fetched from the page table (functionally — the prefetch engine walks in
the background, so no latency is charged to the demand access, but the
walk's memory traffic is) and installed in the L2 TLB.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.addresses import PAGE_SIZE_4K
from repro.common.stats import Counter


class SequentialTLBPrefetcher:
    """Prefetch the next page's translation into the L2 TLB after each fill."""

    def __init__(self, degree: int = 1):
        self.degree = degree
        self.counters = Counter()

    def on_fill(self, virtual_address: int, page_size: int, page_table,
                tlb_hierarchy, memory=None) -> int:
        """Issue prefetches; returns the number of translations prefetched."""
        prefetched = 0
        for distance in range(1, self.degree + 1):
            next_address = virtual_address + distance * page_size
            mapping = page_table.lookup(next_address)
            if mapping is None:
                self.counters.add("prefetch_misses")
                continue
            physical_base, size = mapping
            tlb_hierarchy.l2.fill(next_address, physical_base, size)
            prefetched += 1
            self.counters.add("prefetches")
            if memory is not None:
                # The background walk still reads the page table in memory.
                from repro.memhier.memory_system import MemoryAccessType
                memory.access_address(physical_base, False, MemoryAccessType.PTW)
        return prefetched

    def stats(self) -> Dict[str, int]:
        """Raw counter snapshot."""
        return self.counters.as_dict()
