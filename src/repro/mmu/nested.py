"""Nested (two-dimensional) address translation for virtualised execution.

With hardware-assisted virtualisation, a guest virtual address is translated
by the guest page table into a guest-physical address, and every guest
page-table pointer (and the final guest-physical address) must itself be
translated by the host (extended/nested) page table.  A full 2-D walk of two
4-level radix tables costs up to 24 memory accesses; nested TLBs that cache
guest-virtual -> host-physical translations make most accesses cheap.

Virtuoso supports this by spawning two MimicOS instances — one for the guest
OS and one acting as the hypervisor — and coupling their page tables through
this unit (see :mod:`repro.mimicos.hypervisor`).

Invalidation
------------

A cached guest-virtual -> host-physical entry goes stale through *either*
dimension:

* guest-side remaps (guest khugepaged collapse, guest reclaim, munmap)
  change the guest-virtual -> guest-physical mapping — the engine's
  :meth:`~repro.mmu.mmu.MMU.invalidate_translation` forwards the guest
  kernel's TLB shootdown to :meth:`NestedTranslationUnit.invalidate`;
* host-side remaps (hypervisor swap-out of guest-RAM backing, restrictive-
  mapping evictions, host khugepaged collapse) change the guest-physical ->
  host-physical mapping without naming any guest-virtual address — those
  broadcast :meth:`NestedTranslationUnit.flush`, the INVEPT-style
  version-based whole-unit invalidation (real hardware likewise flushes all
  combined mappings on an EPT modification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.addresses import PAGE_SIZE_4K
from repro.common.stats import Counter
from repro.pagetables.base import MemoryInterface, PageTableBase, WalkResult


@dataclass
class NestedWalkResult:
    """Outcome of a two-dimensional walk."""

    found: bool
    latency: int
    memory_accesses: int
    host_physical_base: int = 0
    page_size: int = PAGE_SIZE_4K
    guest_fault: bool = False
    host_fault: bool = False
    #: The guest-dimension share of ``latency`` (the guest page-table walk).
    guest_latency: int = 0
    #: The host-dimension share of ``latency`` (the repeated host walks).
    host_latency: int = 0


class _NestedTLB:
    """A small cache of guest-virtual -> host-physical translations."""

    def __init__(self, entries: int = 64, latency: int = 2):
        self.entries = entries
        self.latency = latency
        self._store: Dict[int, Tuple[int, int]] = {}
        self._lru: Dict[int, int] = {}
        self._clock = 0
        #: Bumped whenever the cached contents change (fill, invalidate,
        #: flush), mirroring :class:`repro.mmu.tlb.TLB.version`.
        self.version = 0

    def __len__(self) -> int:
        return len(self._store)

    def lookup(self, guest_virtual: int) -> Optional[Tuple[int, int]]:
        self._clock += 1
        vpn = guest_virtual // PAGE_SIZE_4K
        entry = self._store.get(vpn)
        if entry is not None:
            self._lru[vpn] = self._clock
        return entry

    def fill(self, guest_virtual: int, host_physical: int, page_size: int) -> None:
        self._clock += 1
        self.version += 1
        vpn = guest_virtual // PAGE_SIZE_4K
        if vpn not in self._store and len(self._store) >= self.entries:
            victim = min(self._lru, key=self._lru.get)
            self._store.pop(victim, None)
            self._lru.pop(victim, None)
        self._store[vpn] = (host_physical, page_size)
        self._lru[vpn] = self._clock

    def invalidate(self, guest_virtual: int) -> bool:
        """Drop every entry whose combined page covers ``guest_virtual``.

        Entries are keyed by the *faulting* 4 KB VPN, so one combined 2 MB
        translation can occupy many slots — one per subpage that walked.  A
        shootdown for any address inside the page must kill them all: a
        guest that reclaims a huge page invalidates its base address once,
        and leaving the sibling-keyed copies alive would keep serving the
        dead translation (the scenario fuzzer caught exactly that).
        """
        victims = [vpn for vpn, (_host, page_size) in self._store.items()
                   if (vpn * PAGE_SIZE_4K) // page_size * page_size
                   <= guest_virtual < (vpn * PAGE_SIZE_4K) // page_size * page_size + page_size]
        if not victims:
            return False
        for vpn in victims:
            del self._store[vpn]
            self._lru.pop(vpn, None)
        self.version += 1
        return True

    def flush(self) -> bool:
        """Drop every entry (the INVEPT analogue); True if any existed."""
        if not self._store:
            return False
        self._store.clear()
        self._lru.clear()
        self.version += 1
        return True


class NestedTranslationUnit:
    """Performs guest + host (2-D) walks with a nested TLB in front."""

    def __init__(self, guest_page_table: PageTableBase, host_page_table: PageTableBase,
                 nested_tlb_entries: int = 64):
        self.guest_page_table = guest_page_table
        self.host_page_table = host_page_table
        self.nested_tlb = _NestedTLB(nested_tlb_entries)
        self.counters = Counter()

    def walk(self, guest_virtual: int, memory: MemoryInterface) -> NestedWalkResult:
        """Translate a guest virtual address all the way to a host physical one."""
        self.counters.add("nested_walks")

        cached = self.nested_tlb.lookup(guest_virtual)
        if cached is not None:
            host_physical, page_size = cached
            self.counters.add("nested_tlb_hits")
            return NestedWalkResult(found=True, latency=self.nested_tlb.latency,
                                    memory_accesses=0, host_physical_base=host_physical,
                                    page_size=page_size)

        # Dimension 1: the guest walk.  Every guest page-table access would in
        # reality also be translated by the host table; we charge one host
        # walk per guest level by scaling the host walk performed at the end,
        # which keeps the 2-D cost profile (O(n*m) accesses) without walking
        # the host table n times functionally.
        guest_result = self.guest_page_table.walk(guest_virtual, memory)
        guest_latency = guest_result.latency
        latency = guest_latency
        accesses = guest_result.memory_accesses
        if not guest_result.found:
            self.counters.add("guest_faults")
            return NestedWalkResult(found=False, latency=latency, memory_accesses=accesses,
                                    guest_fault=True, guest_latency=guest_latency)

        guest_physical = guest_result.physical_base + (guest_virtual % guest_result.page_size)

        # Dimension 2: the host walk for the guest-physical address, repeated
        # once per guest level touched (the 2-D blow-up).
        host_latency = 0
        host_accesses = 0
        host_result: Optional[WalkResult] = None
        repetitions = max(1, guest_result.memory_accesses)
        for _ in range(repetitions):
            host_result = self.host_page_table.walk(guest_physical, memory)
            host_latency += host_result.latency
            host_accesses += host_result.memory_accesses
            if not host_result.found:
                break

        latency += host_latency
        accesses += host_accesses
        if host_result is None or not host_result.found:
            self.counters.add("host_faults")
            return NestedWalkResult(found=False, latency=latency, memory_accesses=accesses,
                                    host_fault=True, guest_latency=guest_latency,
                                    host_latency=host_latency)

        host_physical = (host_result.physical_base
                         + (guest_physical % host_result.page_size))
        page_size = min(guest_result.page_size, host_result.page_size)
        self.nested_tlb.fill(guest_virtual, host_physical - (guest_virtual % page_size),
                             page_size)
        self.counters.add("nested_walk_hits")
        return NestedWalkResult(found=True, latency=latency, memory_accesses=accesses,
                                host_physical_base=host_physical - (guest_virtual % page_size),
                                page_size=page_size, guest_latency=guest_latency,
                                host_latency=host_latency)

    # ------------------------------------------------------------------ #
    # Invalidation (see the module docstring for who calls what)
    # ------------------------------------------------------------------ #
    def invalidate(self, guest_virtual: int) -> None:
        """Guest-side shootdown: drop the cached entry for ``guest_virtual``."""
        if self.nested_tlb.invalidate(guest_virtual):
            self.counters.add("nested_tlb_invalidations")

    def flush(self) -> None:
        """Host-side (EPT) remap: drop every cached combined translation."""
        if self.nested_tlb.flush():
            self.counters.add("nested_tlb_flushes")

    def stats(self) -> Dict[str, int]:
        """Raw counter snapshot."""
        return self.counters.as_dict()
