"""Hardware MMU models: TLB hierarchy, page-table walker glue and extensions.

The MMU sits between the core model and the memory hierarchy.  For every
memory operand it looks up the TLB hierarchy, walks the active translation
structure on a miss (paying for the walk's memory accesses), invokes the OS
— through Virtuoso's functional channel — on a page fault, and finally
issues the data access itself.  Optional extensions from the VirTool toolset
(TLB prefetching, a software-managed in-memory TLB, Victima-style storage of
TLB entries in the data caches, page-size prediction and nested translation
for virtualised guests) can be switched on per experiment.
"""

from repro.mmu.extensions import MMUExtensions
from repro.mmu.mmu import MMU, MemoryOperationResult, TranslationResult
from repro.mmu.nested import NestedTranslationUnit
from repro.mmu.pom_tlb import PartOfMemoryTLB
from repro.mmu.tlb import TLB, TLBHierarchy, TLBLookupResult
from repro.mmu.tlb_prefetch import SequentialTLBPrefetcher
from repro.mmu.victima import VictimaCacheTLB

__all__ = [
    "MMU",
    "MMUExtensions",
    "MemoryOperationResult",
    "NestedTranslationUnit",
    "PartOfMemoryTLB",
    "SequentialTLBPrefetcher",
    "TLB",
    "TLBHierarchy",
    "TLBLookupResult",
    "TranslationResult",
    "VictimaCacheTLB",
]
