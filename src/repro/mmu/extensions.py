"""Optional MMU extensions from the VirTool toolset (Table 2).

Each flag enables one add-on the MMU consults on the TLB-miss path.  They
are all off in the baseline configuration; the ablation benchmarks and the
feature-matrix table exercise them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MMUExtensions:
    """Switches for the optional translation hardware."""

    #: Sequential TLB prefetching (Vavouliotis et al. style distance-1 prefetch).
    tlb_prefetch: bool = False
    #: Large software-managed in-DRAM TLB probed before the page-table walk
    #: (Ryoo et al., "part-of-memory TLB").
    pom_tlb: bool = False
    #: Store L2-TLB victims in the L2 data cache and probe them before walking
    #: (Victima).
    victima: bool = False
    #: Predict the page size before probing the split L1 TLBs
    #: (superpage-friendly TLB design).
    page_size_prediction: bool = False
    #: Two-dimensional (guest + host) translation for virtualised execution.
    nested_translation: bool = False
    #: Simulator fast path (not modelled hardware): memoise repeat same-page
    #: L1 TLB hits in a flat VPN cache so the batch engine can skip the full
    #: TLB-object machinery.  Simulated statistics are bit-identical with the
    #: cache on or off; the switch exists for the invariance tests.
    vpn_translation_cache: bool = True
