"""Hardware data prefetchers attached to cache levels.

Two prefetchers from Table 4 are modelled: an IP-stride prefetcher on the L1
data cache and a stream prefetcher on the L2.  Prefetchers only generate
candidate addresses; the memory hierarchy decides whether a prefetch fill
actually happens and charges no latency for it (prefetch traffic still
perturbs cache contents and DRAM row-buffer state, which is the effect the
row-buffer-conflict experiments care about).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import PrefetcherConfig


class Prefetcher:
    """Interface: observe a demand access, emit prefetch candidate addresses."""

    def observe(self, address: int, pc: int) -> List[int]:
        """Return a list of addresses to prefetch after this demand access."""
        raise NotImplementedError


class NullPrefetcher(Prefetcher):
    """No prefetching."""

    def observe(self, address: int, pc: int) -> List[int]:
        return []


class IPStridePrefetcher(Prefetcher):
    """Classic instruction-pointer-indexed stride prefetcher.

    Tracks the last address and stride per load PC; after two accesses with a
    stable stride, prefetches ``degree`` lines ahead along that stride.
    """

    def __init__(self, config: PrefetcherConfig, line_size: int = 64):
        self.degree = config.degree
        self.table_entries = config.table_entries
        self.line_size = line_size
        #: pc -> [last_address, stride, confidence] (a list, not a dict: the
        #: observe path runs once per demand access at every cache level).
        self._table: Dict[int, List[int]] = {}

    def observe(self, address: int, pc: int) -> List[int]:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_entries:
                # Evict the oldest entry (FIFO over insertion order).
                self._table.pop(next(iter(self._table)))
            self._table[pc] = [address, 0, 0]
            return []
        stride = address - entry[0]
        prefetches: List[int] = []
        if stride != 0 and stride == entry[1]:
            confidence = entry[2] + 1
            if confidence > 3:
                confidence = 3
            entry[2] = confidence
            if confidence >= 2:
                prefetches = [address + stride * i for i in range(1, self.degree + 1)]
        else:
            entry[2] = 0
        entry[1] = stride
        entry[0] = address
        return prefetches


class StreamPrefetcher(Prefetcher):
    """Next-line stream prefetcher with simple stream detection.

    Tracks active streams by 4 KB region; once two sequential line accesses
    are seen in a region, prefetches the next ``degree`` lines.
    """

    REGION_SIZE = 4096

    def __init__(self, config: PrefetcherConfig, line_size: int = 64):
        self.degree = config.degree
        self.table_entries = config.table_entries
        self.line_size = line_size
        #: region -> [last_line, trained] (list entries; see IPStridePrefetcher).
        self._streams: Dict[int, List[int]] = {}

    def observe(self, address: int, pc: int) -> List[int]:
        region = address // self.REGION_SIZE
        line = address // self.line_size
        stream = self._streams.get(region)
        if stream is None:
            if len(self._streams) >= self.table_entries:
                self._streams.pop(next(iter(self._streams)))
            self._streams[region] = [line, 0]
            return []
        last_line = stream[0]
        direction = 1 if line >= last_line else -1
        delta = line - last_line
        if delta == 1 or delta == -1:
            trained = stream[1] + 1
            stream[1] = 3 if trained > 3 else trained
        stream[0] = line
        if stream[1] >= 1:
            return [(line + direction * i) * self.line_size for i in range(1, self.degree + 1)]
        return []


def build_prefetcher(config: Optional[PrefetcherConfig], line_size: int = 64) -> Prefetcher:
    """Factory mapping a :class:`PrefetcherConfig` to a prefetcher instance."""
    if config is None or config.kind == "none":
        return NullPrefetcher()
    if config.kind == "ip_stride":
        return IPStridePrefetcher(config, line_size)
    if config.kind == "stream":
        return StreamPrefetcher(config, line_size)
    raise ValueError(f"unknown prefetcher kind: {config.kind}")
