"""DRAM main-memory model with row-buffer state per bank.

This is the Ramulator-inspired DRAM model the paper describes refactoring
into Sniper.  The simulator does not need cycle-accurate command scheduling;
the experiments (Figs. 14 and 21) need *row-buffer hit/miss/conflict*
accounting that distinguishes which request class (application data,
page-table entries, translation metadata, kernel data) caused each conflict,
plus a latency that reflects open-page locality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.config import DRAMConfig
from repro.common.stats import Counter


@dataclass(slots=True)
class DRAMAccessResult:
    """Outcome of a single DRAM access."""

    latency: int
    row_hit: bool
    row_conflict: bool
    channel: int
    bank: int
    row: int


class _Bank:
    """Row-buffer state of one DRAM bank."""

    __slots__ = ("open_row", "open_row_owner")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.open_row_owner: str = "none"


class DRAMModel:
    """Main memory organised as channels x ranks x banks with open rows.

    Address mapping interleaves cache lines across channels, then banks, so
    sequential streams spread across banks while a page-table walk's pointer
    chase tends to collide — the behaviour the case studies rely on.
    """

    LINE_SIZE = 64

    def __init__(self, config: DRAMConfig):
        self.config = config
        self.capacity = config.capacity_bytes
        self.num_channels = config.channels
        self.banks_per_channel = config.ranks_per_channel * config.banks_per_rank
        self.row_size = config.row_size_bytes
        self.page_policy = config.page_policy
        self._banks: Dict[Tuple[int, int], _Bank] = {
            (channel, bank): _Bank()
            for channel in range(self.num_channels)
            for bank in range(self.banks_per_channel)
        }
        self.counters = Counter()
        self._c_accesses = self.counters.hot("accesses")
        self._c_row_misses = self.counters.hot("row_misses")
        self._c_row_hits = self.counters.hot("row_hits")
        self._c_row_conflicts = self.counters.hot("row_conflicts")
        #: request_type -> hot counter cells (avoids per-access f-string
        #: formatting and dict-update counter adds on the hot path).
        self._type_cells: Dict[str, tuple] = {}
        self._victim_cells: Dict[str, list] = {}
        #: Outcome details of the most recent :meth:`access_value` call.
        self.last_row_hit = False
        self.last_row_conflict = False
        self.last_location = (0, 0, 0)

    # ------------------------------------------------------------------ #
    # Address mapping
    # ------------------------------------------------------------------ #
    def map_address(self, address: int) -> Tuple[int, int, int]:
        """Map a physical address to (channel, bank, row)."""
        line = address // self.LINE_SIZE
        channel = line % self.num_channels
        line //= self.num_channels
        bank = line % self.banks_per_channel
        line //= self.banks_per_channel
        row = line // (self.row_size // self.LINE_SIZE)
        return channel, bank, row

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #
    def access_value(self, address: int, request_type: str = "data") -> int:
        """Perform one DRAM access and return only its latency.

        The row-buffer outcome is left in :attr:`last_row_hit` /
        :attr:`last_row_conflict` so the hot path allocates nothing.
        ``request_type`` tags the request so row-buffer conflicts can be
        attributed (e.g. conflicts *caused by* page-table accesses, the metric
        of Figs. 14 and 21).
        """
        channel, bank, row = self.map_address(address)
        state = self._banks[(channel, bank)]

        cells = self._type_cells.get(request_type)
        if cells is None:
            hot = self.counters.hot
            cells = self._type_cells[request_type] = (
                hot("accesses_" + request_type),
                hot("row_hits_" + request_type),
                hot("row_conflicts_" + request_type),
                hot("row_conflicts_caused_by_" + request_type),
            )
        self._c_accesses[0] += 1
        cells[0][0] += 1

        row_hit = False
        row_conflict = False
        if self.page_policy == "closed" or state.open_row is None:
            latency = self.config.row_miss_latency
            self._c_row_misses[0] += 1
        elif state.open_row == row:
            latency = self.config.row_hit_latency
            row_hit = True
            self._c_row_hits[0] += 1
            cells[1][0] += 1
        else:
            latency = self.config.row_conflict_latency
            row_conflict = True
            self._c_row_conflicts[0] += 1
            cells[2][0] += 1
            # Attribute the conflict to the request class that caused the row
            # to be closed *and* the one whose row was evicted.
            cells[3][0] += 1
            victim_cell = self._victim_cells.get(state.open_row_owner)
            if victim_cell is None:
                victim_cell = self._victim_cells[state.open_row_owner] = \
                    self.counters.hot("row_conflicts_victim_" + state.open_row_owner)
            victim_cell[0] += 1

        if self.page_policy == "open":
            state.open_row = row
            state.open_row_owner = request_type
        else:
            state.open_row = None
            state.open_row_owner = "none"

        self.last_row_hit = row_hit
        self.last_row_conflict = row_conflict
        self.last_location = (channel, bank, row)
        return latency

    def access(self, address: int, request_type: str = "data") -> DRAMAccessResult:
        """Perform one DRAM access and return its latency and row-buffer outcome."""
        latency = self.access_value(address, request_type)
        channel, bank, row = self.last_location
        return DRAMAccessResult(latency=latency, row_hit=self.last_row_hit,
                                row_conflict=self.last_row_conflict,
                                channel=channel, bank=bank, row=row)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def row_buffer_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row."""
        total = self.counters.get("accesses")
        if total == 0:
            return 0.0
        return self.counters.get("row_hits") / total

    def row_conflicts(self, caused_by: Optional[str] = None) -> int:
        """Total row-buffer conflicts, optionally those caused by one request class."""
        if caused_by is None:
            return self.counters.get("row_conflicts")
        return self.counters.get(f"row_conflicts_caused_by_{caused_by}")

    def translation_row_conflicts(self) -> int:
        """Row-buffer conflicts caused by address-translation metadata accesses.

        Translation metadata covers page-table entries, hash-table buckets,
        range-table nodes and Utopia's RestSeg tag/filter structures — every
        request type the translation layer issues with a ``ptw``/``translation``
        tag.
        """
        total = 0
        for key, value in self.counters.as_dict().items():
            if key.startswith("row_conflicts_caused_by_ptw") or \
               key.startswith("row_conflicts_caused_by_translation"):
                total += value
        return total

    def stats(self) -> Dict[str, int]:
        """Raw counter snapshot."""
        return self.counters.as_dict()

    def reset_stats(self) -> None:
        """Clear statistics but keep row-buffer state."""
        self.counters.reset()

    def __repr__(self) -> str:
        return (f"DRAMModel({self.capacity // (1024 ** 3)}GB, "
                f"{self.num_channels}ch x {self.banks_per_channel}banks, "
                f"{self.page_policy}-page)")
