"""DRAM main-memory model with row-buffer state per bank.

This is the Ramulator-inspired DRAM model the paper describes refactoring
into Sniper.  The simulator does not need cycle-accurate command scheduling;
the experiments (Figs. 14 and 21) need *row-buffer hit/miss/conflict*
accounting that distinguishes which request class (application data,
page-table entries, translation metadata, kernel data) caused each conflict,
plus a latency that reflects open-page locality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.config import DRAMConfig
from repro.common.stats import Counter


@dataclass
class DRAMAccessResult:
    """Outcome of a single DRAM access."""

    latency: int
    row_hit: bool
    row_conflict: bool
    channel: int
    bank: int
    row: int


class _Bank:
    """Row-buffer state of one DRAM bank."""

    __slots__ = ("open_row", "open_row_owner")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.open_row_owner: str = "none"


class DRAMModel:
    """Main memory organised as channels x ranks x banks with open rows.

    Address mapping interleaves cache lines across channels, then banks, so
    sequential streams spread across banks while a page-table walk's pointer
    chase tends to collide — the behaviour the case studies rely on.
    """

    LINE_SIZE = 64

    def __init__(self, config: DRAMConfig):
        self.config = config
        self.capacity = config.capacity_bytes
        self.num_channels = config.channels
        self.banks_per_channel = config.ranks_per_channel * config.banks_per_rank
        self.row_size = config.row_size_bytes
        self.page_policy = config.page_policy
        self._banks: Dict[Tuple[int, int], _Bank] = {
            (channel, bank): _Bank()
            for channel in range(self.num_channels)
            for bank in range(self.banks_per_channel)
        }
        self.counters = Counter()

    # ------------------------------------------------------------------ #
    # Address mapping
    # ------------------------------------------------------------------ #
    def map_address(self, address: int) -> Tuple[int, int, int]:
        """Map a physical address to (channel, bank, row)."""
        line = address // self.LINE_SIZE
        channel = line % self.num_channels
        line //= self.num_channels
        bank = line % self.banks_per_channel
        line //= self.banks_per_channel
        row = line // (self.row_size // self.LINE_SIZE)
        return channel, bank, row

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #
    def access(self, address: int, request_type: str = "data") -> DRAMAccessResult:
        """Perform one DRAM access and return its latency and row-buffer outcome.

        ``request_type`` tags the request so row-buffer conflicts can be
        attributed (e.g. conflicts *caused by* page-table accesses, the metric
        of Figs. 14 and 21).
        """
        channel, bank, row = self.map_address(address)
        state = self._banks[(channel, bank)]

        self.counters.add("accesses")
        self.counters.add(f"accesses_{request_type}")

        if self.page_policy == "closed":
            latency = self.config.row_miss_latency
            row_hit = False
            row_conflict = False
            self.counters.add("row_misses")
        elif state.open_row is None:
            latency = self.config.row_miss_latency
            row_hit = False
            row_conflict = False
            self.counters.add("row_misses")
        elif state.open_row == row:
            latency = self.config.row_hit_latency
            row_hit = True
            row_conflict = False
            self.counters.add("row_hits")
            self.counters.add(f"row_hits_{request_type}")
        else:
            latency = self.config.row_conflict_latency
            row_hit = False
            row_conflict = True
            self.counters.add("row_conflicts")
            self.counters.add(f"row_conflicts_{request_type}")
            # Attribute the conflict to the request class that caused the row
            # to be closed *and* the one whose row was evicted.
            self.counters.add(f"row_conflicts_caused_by_{request_type}")
            self.counters.add(f"row_conflicts_victim_{state.open_row_owner}")

        if self.page_policy == "open":
            state.open_row = row
            state.open_row_owner = request_type
        else:
            state.open_row = None
            state.open_row_owner = "none"

        return DRAMAccessResult(latency=latency, row_hit=row_hit, row_conflict=row_conflict,
                                channel=channel, bank=bank, row=row)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def row_buffer_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row."""
        total = self.counters.get("accesses")
        if total == 0:
            return 0.0
        return self.counters.get("row_hits") / total

    def row_conflicts(self, caused_by: Optional[str] = None) -> int:
        """Total row-buffer conflicts, optionally those caused by one request class."""
        if caused_by is None:
            return self.counters.get("row_conflicts")
        return self.counters.get(f"row_conflicts_caused_by_{caused_by}")

    def translation_row_conflicts(self) -> int:
        """Row-buffer conflicts caused by address-translation metadata accesses.

        Translation metadata covers page-table entries, hash-table buckets,
        range-table nodes and Utopia's RestSeg tag/filter structures — every
        request type the translation layer issues with a ``ptw``/``translation``
        tag.
        """
        total = 0
        for key, value in self.counters.as_dict().items():
            if key.startswith("row_conflicts_caused_by_ptw") or \
               key.startswith("row_conflicts_caused_by_translation"):
                total += value
        return total

    def stats(self) -> Dict[str, int]:
        """Raw counter snapshot."""
        return self.counters.as_dict()

    def reset_stats(self) -> None:
        """Clear statistics but keep row-buffer state."""
        self.counters.reset()

    def __repr__(self) -> str:
        return (f"DRAMModel({self.capacity // (1024 ** 3)}GB, "
                f"{self.num_channels}ch x {self.banks_per_channel}banks, "
                f"{self.page_policy}-page)")
