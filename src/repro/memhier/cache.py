"""Set-associative cache model with LRU and SRRIP replacement.

The cache is a tag store only: the simulator never stores data values, it
only needs hit/miss behaviour and latency.  Each cache level tracks hits,
misses, evictions and fills per request type (application data, page-table
walk, kernel/MimicOS data), which the experiments use to quantify the cache
pollution caused by OS routines and page-table accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.config import CacheConfig
from repro.common.stats import Counter


@dataclass(slots=True)
class CacheAccessResult:
    """Outcome of a single cache lookup."""

    hit: bool
    latency: int
    evicted_tag: Optional[int] = None
    evicted_dirty: bool = False


class _CacheLine:
    """One cache line's bookkeeping (tag, dirty bit, replacement state)."""

    __slots__ = ("tag", "valid", "dirty", "lru_stamp", "rrpv", "request_type")

    def __init__(self) -> None:
        self.tag = 0
        self.valid = False
        self.dirty = False
        self.lru_stamp = 0
        self.rrpv = 3
        self.request_type = "data"


class Cache:
    """A single set-associative cache level.

    Parameters come from :class:`repro.common.config.CacheConfig`.  The
    replacement policy is either true LRU or SRRIP (re-reference interval
    prediction, the paper's L2/L3 policy).
    """

    SRRIP_MAX_RRPV = 3
    SRRIP_INSERT_RRPV = 2

    def __init__(self, config: CacheConfig):
        self.config = config
        self.name = config.name
        self.latency = config.latency
        self.line_size = config.line_size
        self.num_sets = config.sets
        self.associativity = config.associativity
        self.replacement = config.replacement
        self._sets: List[List[_CacheLine]] = [
            [_CacheLine() for _ in range(self.associativity)] for _ in range(self.num_sets)
        ]
        #: Per-set tag -> line index of the *valid* lines, kept in lockstep
        #: with ``_sets`` so the hit path is a dict probe instead of an
        #: associativity-wide scan (16-way at L2/L3).  Replacement decisions
        #: still walk the ordered line list, so hit/miss/eviction statistics
        #: are unchanged.
        self._tag_maps: List[Dict[int, _CacheLine]] = [
            {} for _ in range(self.num_sets)
        ]
        self._access_clock = 0
        self.counters = Counter()
        #: request_type -> (accesses, hits, misses) hot counter cells;
        #: populated lazily so only the request classes that actually reach
        #: this level pay for cells (and no per-access f-string formatting).
        self._type_cells: Dict[str, Tuple[List[int], List[int], List[int]]] = {}
        self._fill_cells: Dict[str, List[int]] = {}
        self._pollution_cells: Dict[str, List[int]] = {}
        self._c_evictions = self.counters.hot("evictions")
        #: Identity of the line displaced by the most recent miss-fill.
        self.last_evicted_tag: Optional[int] = None
        self.last_evicted_dirty = False

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def _index_and_tag(self, address: int) -> Tuple[int, int]:
        block = address // self.line_size
        return block % self.num_sets, block // self.num_sets

    def _cells_for(self, request_type: str) -> Tuple[List[int], List[int], List[int]]:
        cells = (self.counters.hot("accesses_" + request_type),
                 self.counters.hot("hits_" + request_type),
                 self.counters.hot("misses_" + request_type))
        self._type_cells[request_type] = cells
        return cells

    # ------------------------------------------------------------------ #
    # Main access path
    # ------------------------------------------------------------------ #
    def access_bool(self, address: int, is_write: bool = False,
                    request_type: str = "data") -> bool:
        """Allocation-free access: True on a hit, False on a miss-and-fill.

        The access latency is always ``self.latency`` for this level; the
        memory hierarchy adds the next level's latency on a miss.
        """
        self._access_clock += 1
        block = address // self.line_size
        set_index = block % self.num_sets
        tag = block // self.num_sets

        cells = self._type_cells.get(request_type)
        if cells is None:
            cells = self._cells_for(request_type)
        cells[0][0] += 1
        line = self._tag_maps[set_index].get(tag)
        if line is not None:
            cells[1][0] += 1
            line.lru_stamp = self._access_clock
            line.rrpv = 0
            if is_write:
                line.dirty = True
            return True

        cells[2][0] += 1
        self._fill(set_index, tag, is_write, request_type)
        return False

    def access(self, address: int, is_write: bool = False,
               request_type: str = "data") -> CacheAccessResult:
        """Look up ``address``; on a miss the line is filled (allocate-on-miss).

        Object-returning wrapper around :meth:`access_bool` kept for callers
        that need the evicted line's identity (write-back modelling, tests).
        """
        if self.access_bool(address, is_write, request_type):
            return CacheAccessResult(hit=True, latency=self.latency)
        return CacheAccessResult(hit=False, latency=self.latency,
                                 evicted_tag=self.last_evicted_tag,
                                 evicted_dirty=self.last_evicted_dirty)

    def probe(self, address: int) -> bool:
        """Return True if ``address`` is present without disturbing state."""
        set_index, tag = self._index_and_tag(address)
        return tag in self._tag_maps[set_index]

    def fill(self, address: int, request_type: str = "prefetch") -> None:
        """Insert a line without counting it as a demand access (prefetch fill)."""
        set_index, tag = self._index_and_tag(address)
        if tag in self._tag_maps[set_index]:
            return
        cell = self._fill_cells.get(request_type)
        if cell is None:
            cell = self._fill_cells[request_type] = \
                self.counters.hot("fills_" + request_type)
        cell[0] += 1
        self._fill(set_index, tag, is_write=False, request_type=request_type)

    def invalidate(self, address: int) -> bool:
        """Invalidate the line holding ``address``; returns True if it was present."""
        set_index, tag = self._index_and_tag(address)
        line = self._tag_maps[set_index].pop(tag, None)
        if line is not None:
            line.valid = False
            self.counters.add("invalidations")
            return True
        return False

    def flush(self) -> None:
        """Invalidate every line (used between simulation regions)."""
        for lines in self._sets:
            for line in lines:
                line.valid = False
                line.dirty = False
        for tag_map in self._tag_maps:
            tag_map.clear()

    # ------------------------------------------------------------------ #
    # Replacement
    # ------------------------------------------------------------------ #
    def _fill(self, set_index: int, tag: int, is_write: bool,
              request_type: str) -> None:
        lines = self._sets[set_index]
        tag_map = self._tag_maps[set_index]
        victim = self._choose_victim(lines)
        evicted_tag: Optional[int] = None
        evicted_dirty = False
        if victim.valid:
            del tag_map[victim.tag]
            evicted_tag = victim.tag * self.num_sets + set_index
            evicted_dirty = victim.dirty
            self._c_evictions[0] += 1
            if victim.request_type != request_type:
                # A fill from one request class displaced another class's data:
                # this is the cache-pollution effect the paper highlights.
                cell = self._pollution_cells.get(request_type)
                if cell is None:
                    cell = self._pollution_cells[request_type] = \
                        self.counters.hot("pollution_evictions_by_" + request_type)
                cell[0] += 1
        victim.tag = tag
        victim.valid = True
        victim.dirty = is_write
        victim.lru_stamp = self._access_clock
        victim.rrpv = self.SRRIP_INSERT_RRPV
        victim.request_type = request_type
        tag_map[tag] = victim
        self.last_evicted_tag = evicted_tag
        self.last_evicted_dirty = evicted_dirty

    def _choose_victim(self, lines: List[_CacheLine]) -> _CacheLine:
        for line in lines:
            if not line.valid:
                return line
        if self.replacement == "lru":
            # First line with the minimum stamp (same tie-break as min()).
            victim = lines[0]
            best = victim.lru_stamp
            for line in lines:
                stamp = line.lru_stamp
                if stamp < best:
                    best = stamp
                    victim = line
            return victim
        # SRRIP: evict a line with the maximum re-reference interval,
        # aging all lines until one is found.
        while True:
            for line in lines:
                if line.rrpv >= self.SRRIP_MAX_RRPV:
                    return line
            for line in lines:
                line.rrpv += 1

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def hits(self, request_type: Optional[str] = None) -> int:
        """Total hits, optionally restricted to one request class."""
        return self._sum_counter("hits", request_type)

    def misses(self, request_type: Optional[str] = None) -> int:
        """Total misses, optionally restricted to one request class."""
        return self._sum_counter("misses", request_type)

    def accesses(self, request_type: Optional[str] = None) -> int:
        """Total demand accesses, optionally restricted to one request class."""
        return self._sum_counter("accesses", request_type)

    def miss_rate(self) -> float:
        """Demand miss rate across all request classes."""
        total = self.accesses()
        if total == 0:
            return 0.0
        return self.misses() / total

    def _sum_counter(self, prefix: str, request_type: Optional[str]) -> int:
        counts = self.counters.as_dict()
        if request_type is not None:
            return counts.get(f"{prefix}_{request_type}", 0)
        return sum(v for k, v in counts.items() if k.startswith(prefix + "_"))

    def stats(self) -> Dict[str, int]:
        """Raw counter snapshot."""
        return self.counters.as_dict()

    def __repr__(self) -> str:
        return (f"Cache({self.name}, {self.config.size_bytes // 1024}KB, "
                f"{self.associativity}-way, {self.replacement})")
