"""The memory hierarchy: L1/L2/L3 caches in front of DRAM.

`MemoryHierarchy.access` is the single entry point used by the core model,
the page-table walker and the MimicOS instruction-stream injector.  Each
access carries a *request type* so that cache pollution and DRAM row-buffer
interference can be attributed to application data, page-table walks,
translation metadata or kernel (MimicOS) activity — the attribution the
paper's case studies are built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.common.config import CacheConfig, DRAMConfig, PrefetcherConfig, SystemConfig
from repro.common.stats import Counter
from repro.memhier.cache import Cache
from repro.memhier.dram import DRAMModel
from repro.memhier.prefetcher import build_prefetcher


class MemoryAccessType(str, Enum):
    """Who issued a memory request; used for attribution, not behaviour."""

    DATA = "data"
    INSTRUCTION = "instruction"
    PTW = "ptw"
    TRANSLATION = "translation"
    KERNEL = "kernel"
    KERNEL_ZERO = "kernel_zero"
    PREFETCH = "prefetch"
    SWAP = "swap"


@dataclass
class MemoryRequest:
    """A single memory request travelling down the hierarchy."""

    address: int
    is_write: bool = False
    access_type: MemoryAccessType = MemoryAccessType.DATA
    pc: int = 0


@dataclass
class MemoryAccessOutcome:
    """Latency and where in the hierarchy the request was satisfied."""

    latency: int
    served_by: str
    row_conflict: bool = False


class MemoryHierarchy:
    """Three cache levels backed by DRAM, with per-level prefetchers.

    The hierarchy is deliberately blocking and latency-additive: a request
    pays each level's lookup latency until it hits, then DRAM latency if it
    misses everywhere.  Memory-level parallelism is modelled by the core
    model (which discounts overlapping misses), not here.
    """

    def __init__(self,
                 l1_config: CacheConfig,
                 l2_config: CacheConfig,
                 l3_config: CacheConfig,
                 dram_config: DRAMConfig,
                 l1_prefetcher: Optional[PrefetcherConfig] = None,
                 l2_prefetcher: Optional[PrefetcherConfig] = None):
        self.l1 = Cache(l1_config)
        self.l2 = Cache(l2_config)
        self.l3 = Cache(l3_config)
        self.dram = DRAMModel(dram_config)
        self.l1_prefetcher = build_prefetcher(l1_prefetcher, l1_config.line_size)
        self.l2_prefetcher = build_prefetcher(l2_prefetcher, l2_config.line_size)
        self.counters = Counter()

    @classmethod
    def from_system_config(cls, config: SystemConfig) -> "MemoryHierarchy":
        """Build the hierarchy described by a :class:`SystemConfig`."""
        return cls(
            l1_config=config.l1d_cache,
            l2_config=config.l2_cache,
            l3_config=config.l3_cache,
            dram_config=config.dram,
            l1_prefetcher=config.l1_prefetcher,
            l2_prefetcher=config.l2_prefetcher,
        )

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #
    def access(self, request: MemoryRequest) -> MemoryAccessOutcome:
        """Send one request through L1 -> L2 -> L3 -> DRAM and return its outcome."""
        request_type = request.access_type.value
        self.counters.add("requests")
        self.counters.add(f"requests_{request_type}")

        latency = 0
        row_conflict = False

        l1_result = self.l1.access(request.address, request.is_write, request_type)
        latency += l1_result.latency
        if l1_result.hit:
            self._run_prefetchers(request, level=1)
            return MemoryAccessOutcome(latency=latency, served_by="L1")

        l2_result = self.l2.access(request.address, request.is_write, request_type)
        latency += l2_result.latency
        if l2_result.hit:
            self._run_prefetchers(request, level=2)
            return MemoryAccessOutcome(latency=latency, served_by="L2")

        l3_result = self.l3.access(request.address, request.is_write, request_type)
        latency += l3_result.latency
        if l3_result.hit:
            return MemoryAccessOutcome(latency=latency, served_by="L3")

        dram_result = self.dram.access(request.address, request_type)
        latency += dram_result.latency
        row_conflict = dram_result.row_conflict
        self._run_prefetchers(request, level=2)
        return MemoryAccessOutcome(latency=latency, served_by="DRAM", row_conflict=row_conflict)

    def access_address(self, address: int, is_write: bool = False,
                       access_type: MemoryAccessType = MemoryAccessType.DATA,
                       pc: int = 0) -> int:
        """Convenience wrapper returning only the latency of an access."""
        return self.access(MemoryRequest(address, is_write, access_type, pc)).latency

    def _run_prefetchers(self, request: MemoryRequest, level: int) -> None:
        """Train the prefetchers on a demand access and issue prefetch fills."""
        if request.access_type in (MemoryAccessType.PREFETCH,):
            return
        if level == 1:
            candidates = self.l1_prefetcher.observe(request.address, request.pc)
            for address in candidates:
                if address < 0:
                    continue
                self.counters.add("l1_prefetches")
                self.l1.fill(address, request_type="prefetch")
        candidates = self.l2_prefetcher.observe(request.address, request.pc)
        for address in candidates:
            if address < 0:
                continue
            self.counters.add("l2_prefetches")
            self.l2.fill(address, request_type="prefetch")

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Dict[str, int]]:
        """Nested counter snapshot for every level of the hierarchy."""
        return {
            "hierarchy": self.counters.as_dict(),
            "l1": self.l1.stats(),
            "l2": self.l2.stats(),
            "l3": self.l3.stats(),
            "dram": self.dram.stats(),
        }

    def flush_caches(self) -> None:
        """Invalidate all cache levels (keeps DRAM row-buffer state)."""
        self.l1.flush()
        self.l2.flush()
        self.l3.flush()
