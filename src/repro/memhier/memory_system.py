"""The memory hierarchy: L1/L2/L3 caches in front of DRAM.

`MemoryHierarchy.access` is the single entry point used by the core model,
the page-table walker and the MimicOS instruction-stream injector.  Each
access carries a *request type* so that cache pollution and DRAM row-buffer
interference can be attributed to application data, page-table walks,
translation metadata or kernel (MimicOS) activity — the attribution the
paper's case studies are built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.common.config import CacheConfig, DRAMConfig, PrefetcherConfig, SystemConfig
from repro.common.stats import Counter
from repro.memhier.cache import Cache
from repro.memhier.dram import DRAMModel
from repro.memhier.prefetcher import NullPrefetcher, build_prefetcher


class MemoryAccessType(str, Enum):
    """Who issued a memory request; used for attribution, not behaviour."""

    DATA = "data"
    INSTRUCTION = "instruction"
    PTW = "ptw"
    TRANSLATION = "translation"
    KERNEL = "kernel"
    KERNEL_ZERO = "kernel_zero"
    PREFETCH = "prefetch"
    SWAP = "swap"


@dataclass(slots=True)
class MemoryRequest:
    """A single memory request travelling down the hierarchy."""

    address: int
    is_write: bool = False
    access_type: MemoryAccessType = MemoryAccessType.DATA
    pc: int = 0


@dataclass(slots=True)
class MemoryAccessOutcome:
    """Latency and where in the hierarchy the request was satisfied."""

    latency: int
    served_by: str
    row_conflict: bool = False


class MemoryHierarchy:
    """Three cache levels backed by DRAM, with per-level prefetchers.

    The hierarchy is deliberately blocking and latency-additive: a request
    pays each level's lookup latency until it hits, then DRAM latency if it
    misses everywhere.  Memory-level parallelism is modelled by the core
    model (which discounts overlapping misses), not here.
    """

    def __init__(self,
                 l1_config: CacheConfig,
                 l2_config: CacheConfig,
                 l3_config: CacheConfig,
                 dram_config: DRAMConfig,
                 l1_prefetcher: Optional[PrefetcherConfig] = None,
                 l2_prefetcher: Optional[PrefetcherConfig] = None):
        self.l1 = Cache(l1_config)
        self.l2 = Cache(l2_config)
        self.l3 = Cache(l3_config)
        self.dram = DRAMModel(dram_config)
        self.l1_prefetcher = build_prefetcher(l1_prefetcher, l1_config.line_size)
        self.l2_prefetcher = build_prefetcher(l2_prefetcher, l2_config.line_size)
        self.counters = Counter()
        self._c_requests = self.counters.hot("requests")
        self._c_l1_prefetches = self.counters.hot("l1_prefetches")
        self._c_l2_prefetches = self.counters.hot("l2_prefetches")
        #: request-type string -> hot cell for ``requests_<type>``.
        self._req_cells: Dict[str, List[int]] = {}
        #: Outcome details of the most recent :meth:`access_value` call.
        self.last_served_by = "none"
        self.last_row_conflict = False
        self._l1_prefetch_active = not isinstance(self.l1_prefetcher, NullPrefetcher)
        self._l2_prefetch_active = not isinstance(self.l2_prefetcher, NullPrefetcher)

    @classmethod
    def from_system_config(cls, config: SystemConfig) -> "MemoryHierarchy":
        """Build the hierarchy described by a :class:`SystemConfig`."""
        return cls(
            l1_config=config.l1d_cache,
            l2_config=config.l2_cache,
            l3_config=config.l3_cache,
            dram_config=config.dram,
            l1_prefetcher=config.l1_prefetcher,
            l2_prefetcher=config.l2_prefetcher,
        )

    @classmethod
    def per_core_view(cls, shared: "MemoryHierarchy",
                      config: SystemConfig) -> "MemoryHierarchy":
        """A per-core view of ``shared``: private L1, shared L2/LLC/DRAM.

        The view is a complete :class:`MemoryHierarchy` (the access path is
        unchanged), but ``l2``/``l3``/``dram`` — and the L2 prefetcher, which
        belongs to the shared L2 — *alias the shared hierarchy's objects*, so
        co-running cores pollute each other's shared cache levels and contend
        on the DRAM row buffers exactly as the single-hierarchy model would
        charge one core.  The L1 cache, the L1 prefetcher and the request
        counters are private, giving per-core attribution; ``last_served_by``
        / ``last_row_conflict`` are per-view, so each core reads its own
        outcome even though the levels are shared.
        """
        view = cls.from_system_config(config)
        view.l2 = shared.l2
        view.l3 = shared.l3
        view.dram = shared.dram
        view.l2_prefetcher = shared.l2_prefetcher
        view._l2_prefetch_active = shared._l2_prefetch_active
        return view

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #
    def access_value(self, address: int, is_write: bool = False,
                     access_type: str = "data", pc: int = 0) -> int:
        """Allocation-free access: returns the total latency of the request.

        ``access_type`` is the request-type *string* (``MemoryAccessType.
        <X>.value``).  Which level served the request and whether DRAM saw a
        row-buffer conflict are left in :attr:`last_served_by` /
        :attr:`last_row_conflict`; every counter a :meth:`access` call would
        bump is bumped identically here.
        """
        cell = self._req_cells.get(access_type)
        if cell is None:
            cell = self._req_cells[access_type] = self.counters.hot("requests_" + access_type)
        self._c_requests[0] += 1
        cell[0] += 1

        l1 = self.l1
        latency = l1.latency
        if l1.access_bool(address, is_write, access_type):
            self.last_served_by = "L1"
            self.last_row_conflict = False
            if access_type != "prefetch":
                self._observe_prefetchers(address, pc, level=1)
            return latency

        l2 = self.l2
        latency += l2.latency
        if l2.access_bool(address, is_write, access_type):
            self.last_served_by = "L2"
            self.last_row_conflict = False
            if access_type != "prefetch":
                self._observe_prefetchers(address, pc, level=2)
            return latency

        l3 = self.l3
        latency += l3.latency
        if l3.access_bool(address, is_write, access_type):
            self.last_served_by = "L3"
            self.last_row_conflict = False
            return latency

        latency += self.dram.access_value(address, access_type)
        self.last_served_by = "DRAM"
        self.last_row_conflict = self.dram.last_row_conflict
        if access_type != "prefetch":
            self._observe_prefetchers(address, pc, level=2)
        return latency

    def access(self, request: MemoryRequest) -> MemoryAccessOutcome:
        """Send one request through L1 -> L2 -> L3 -> DRAM and return its outcome."""
        access_type = request.access_type
        type_value = access_type.value if isinstance(access_type, MemoryAccessType) \
            else str(access_type)
        latency = self.access_value(request.address, request.is_write, type_value, request.pc)
        return MemoryAccessOutcome(latency=latency, served_by=self.last_served_by,
                                   row_conflict=self.last_row_conflict)

    def access_address(self, address: int, is_write: bool = False,
                       access_type: MemoryAccessType = MemoryAccessType.DATA,
                       pc: int = 0) -> int:
        """Convenience wrapper returning only the latency of an access."""
        type_value = access_type.value if isinstance(access_type, MemoryAccessType) \
            else str(access_type)
        return self.access_value(address, is_write, type_value, pc)

    def _observe_prefetchers(self, address: int, pc: int, level: int) -> None:
        """Train the prefetchers on a demand access and issue prefetch fills."""
        if level == 1 and self._l1_prefetch_active:
            for candidate in self.l1_prefetcher.observe(address, pc):
                if candidate < 0:
                    continue
                self._c_l1_prefetches[0] += 1
                self.l1.fill(candidate, request_type="prefetch")
        if self._l2_prefetch_active:
            for candidate in self.l2_prefetcher.observe(address, pc):
                if candidate < 0:
                    continue
                self._c_l2_prefetches[0] += 1
                self.l2.fill(candidate, request_type="prefetch")

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Dict[str, int]]:
        """Nested counter snapshot for every level of the hierarchy."""
        return {
            "hierarchy": self.counters.as_dict(),
            "l1": self.l1.stats(),
            "l2": self.l2.stats(),
            "l3": self.l3.stats(),
            "dram": self.dram.stats(),
        }

    def flush_caches(self) -> None:
        """Invalidate all cache levels (keeps DRAM row-buffer state)."""
        self.l1.flush()
        self.l2.flush()
        self.l3.flush()
