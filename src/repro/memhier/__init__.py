"""Memory-hierarchy substrate: caches, prefetchers and the DRAM model.

These models stand in for the cache and main-memory models of Sniper /
ChampSim / Ramulator2 in the original artifact.  They are trace-driven and
latency-producing: each access returns the number of core cycles it took and
updates hit/miss/row-buffer statistics that the experiments aggregate.
"""

from repro.memhier.cache import Cache, CacheAccessResult
from repro.memhier.dram import DRAMModel, DRAMAccessResult
from repro.memhier.memory_system import MemoryHierarchy, MemoryAccessType, MemoryRequest
from repro.memhier.prefetcher import IPStridePrefetcher, StreamPrefetcher, build_prefetcher

__all__ = [
    "Cache",
    "CacheAccessResult",
    "DRAMModel",
    "DRAMAccessResult",
    "MemoryHierarchy",
    "MemoryAccessType",
    "MemoryRequest",
    "IPStridePrefetcher",
    "StreamPrefetcher",
    "build_prefetcher",
]
