"""Descriptors of the five simulator integrations (Table 3 / Fig. 11).

Each :class:`SimulatorIntegration` records how Virtuoso plugs into one host
simulator: the frontend style, the MimicOS instrumentation mode, the lines
of code the paper reports for the integration (Table 3), and the host-cost
coefficients used by the overhead model (how expensive one simulated
instruction is for that simulator, and its baseline memory footprint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class IntegrationLoC:
    """Lines of code modified per simulator component (Table 3)."""

    frontend: int
    core_model: int
    mmu_model: int
    files: int

    @property
    def total(self) -> int:
        """Total modified lines."""
        return self.frontend + self.core_model + self.mmu_model


@dataclass(frozen=True)
class SimulatorIntegration:
    """One host simulator Virtuoso has been integrated with."""

    name: str
    frontend: str                  # trace | execution | emulation | memory_only
    instrumentation: str           # online | offline | reuse_emulation
    loc: IntegrationLoC
    #: Relative host cost of simulating one application instruction.
    host_cost_per_app_instruction: float
    #: Relative host cost of simulating one injected MimicOS instruction.
    host_cost_per_kernel_instruction: float
    #: Baseline host memory footprint in GB (per simulation task).
    baseline_memory_gb: float
    description: str = ""


#: Integration descriptors.  LoC figures are Table 3 of the paper; the cost
#: coefficients encode the qualitative differences the paper reports (gem5 is
#: the slowest per instruction, Ramulator the cheapest since it only models
#: memory, online instrumentation costs extra per kernel instruction).
INTEGRATIONS: Dict[str, SimulatorIntegration] = {
    "champsim": SimulatorIntegration(
        name="ChampSim", frontend="trace", instrumentation="online",
        loc=IntegrationLoC(frontend=56, core_model=45, mmu_model=22, files=6),
        host_cost_per_app_instruction=1.0,
        host_cost_per_kernel_instruction=1.3,
        baseline_memory_gb=0.35,
        description="Trace-based microarchitecture simulator"),
    "sniper": SimulatorIntegration(
        name="Sniper", frontend="execution", instrumentation="online",
        loc=IntegrationLoC(frontend=46, core_model=35, mmu_model=180, files=9),
        host_cost_per_app_instruction=1.6,
        host_cost_per_kernel_instruction=2.2,
        baseline_memory_gb=0.38,
        description="Execution-driven interval-model simulator"),
    "ramulator": SimulatorIntegration(
        name="Ramulator2", frontend="memory_only", instrumentation="offline",
        loc=IntegrationLoC(frontend=79, core_model=83, mmu_model=44, files=6),
        host_cost_per_app_instruction=0.25,
        host_cost_per_kernel_instruction=0.26,
        baseline_memory_gb=0.2,
        description="DRAM simulator with a simple core frontend"),
    "gem5-se": SimulatorIntegration(
        name="gem5-SE", frontend="emulation", instrumentation="reuse_emulation",
        loc=IntegrationLoC(frontend=0, core_model=221, mmu_model=44, files=12),
        host_cost_per_app_instruction=3.2,
        host_cost_per_kernel_instruction=3.4,
        baseline_memory_gb=1.0,
        description="gem5 syscall-emulation mode"),
    "mqsim": SimulatorIntegration(
        name="MQSim", frontend="memory_only", instrumentation="offline",
        loc=IntegrationLoC(frontend=22, core_model=0, mmu_model=18, files=4),
        host_cost_per_app_instruction=0.05,
        host_cost_per_kernel_instruction=0.05,
        baseline_memory_gb=0.1,
        description="Multi-queue SSD simulator (storage side of VM studies)"),
}

#: The gem5 full-system comparison point of Fig. 11 (not a MimicOS integration).
GEM5_FS = SimulatorIntegration(
    name="gem5-FS", frontend="emulation", instrumentation="reuse_emulation",
    loc=IntegrationLoC(frontend=0, core_model=0, mmu_model=0, files=0),
    host_cost_per_app_instruction=3.2,
    host_cost_per_kernel_instruction=3.4,
    baseline_memory_gb=1.0,
    description="gem5 full-system mode running a full Linux kernel")


def get_integration(name: str) -> SimulatorIntegration:
    """Look up an integration descriptor by (case-insensitive) name."""
    key = name.lower()
    if key == "gem5-fs":
        return GEM5_FS
    if key not in INTEGRATIONS:
        raise KeyError(f"unknown integration {name!r}; known: {integration_names()}")
    return INTEGRATIONS[key]


def integration_names() -> List[str]:
    """Names of the MimicOS integrations (excluding the gem5-FS comparison point)."""
    return sorted(INTEGRATIONS)
