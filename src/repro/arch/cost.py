"""Host simulation-cost model for the overhead studies (Figs. 11 and 12).

Wall-clock measurements of a pure-Python simulator are dominated by Python
interpreter noise and say nothing about the C++ simulators the paper
integrates with, so the overhead experiments use an explicit cost model on
top of the simulation's *measured* instruction counts:

* host time ∝ (application instructions) x per-instruction cost of the host
  simulator + (MimicOS instructions) x per-kernel-instruction cost (higher
  when online binary instrumentation is used);
* host memory = the host simulator's baseline footprint x the
  instrumentation mode's memory factor (online Pin-style instrumentation
  roughly doubles it), plus the resident trace if the frontend stores one.

The *inputs* (how many kernel instructions MimicOS injected, how many
application instructions ran) come from real simulation runs, so Fig. 12's
correlation is measured, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.integrations import SimulatorIntegration
from repro.core.instrumentation import InstrumentationTool
from repro.core.report import SimulationReport


@dataclass
class HostCostEstimate:
    """Modelled host cost of one simulation run."""

    simulator: str
    host_time_units: float
    host_memory_gb: float
    kernel_instruction_fraction: float

    def slowdown_over(self, baseline: "HostCostEstimate") -> float:
        """Relative slowdown of this run versus a baseline run."""
        if baseline.host_time_units == 0:
            return 0.0
        return self.host_time_units / baseline.host_time_units - 1.0

    def memory_overhead_over(self, baseline: "HostCostEstimate") -> float:
        """Relative memory overhead versus a baseline run."""
        if baseline.host_memory_gb == 0:
            return 0.0
        return self.host_memory_gb / baseline.host_memory_gb


class SimulationCostModel:
    """Computes host time/memory estimates for a report on a given simulator."""

    #: Extra per-kernel-instruction cost when a full kernel is simulated
    #: (full-system mode pays for devices, interrupts, privilege switches).
    FULL_SYSTEM_INSTRUCTION_FACTOR = 1.25
    #: Additional fixed kernel activity a full-blown OS executes per
    #: application instruction (timer ticks, daemons) even without VM events.
    FULL_SYSTEM_BACKGROUND_FRACTION = 0.18

    def __init__(self, integration: SimulatorIntegration):
        self.integration = integration

    def estimate(self, report: SimulationReport, with_mimicos: bool = True) -> HostCostEstimate:
        """Estimate the host cost of running ``report``'s simulation."""
        app = report.instructions
        kernel = report.kernel_instructions if with_mimicos else 0

        time_units = (app * self.integration.host_cost_per_app_instruction
                      + kernel * self.integration.host_cost_per_kernel_instruction)

        instrumentation = InstrumentationTool(mode=self.integration.instrumentation)
        memory_factor = instrumentation.host_memory_overhead_factor() if with_mimicos else 1.0
        memory_gb = self.integration.baseline_memory_gb * memory_factor

        fraction = kernel / (app + kernel) if (app + kernel) else 0.0
        return HostCostEstimate(simulator=self.integration.name,
                                host_time_units=time_units,
                                host_memory_gb=memory_gb,
                                kernel_instruction_fraction=fraction)

    def estimate_full_system(self, report: SimulationReport) -> HostCostEstimate:
        """Estimate the cost of full-system simulation of the same workload.

        A full-system run simulates every kernel instruction (not just the
        relevant modules) plus background OS activity, and cannot drop the
        kernel even when the workload barely interacts with the OS.
        """
        app = report.instructions
        kernel = report.kernel_instructions * self.FULL_SYSTEM_INSTRUCTION_FACTOR
        background = app * self.FULL_SYSTEM_BACKGROUND_FRACTION
        time_units = (app * self.integration.host_cost_per_app_instruction
                      + (kernel + background)
                      * self.integration.host_cost_per_kernel_instruction)
        memory_gb = self.integration.baseline_memory_gb * 1.69  # paper: 1 GB -> 1.69 GB
        fraction = (kernel + background) / (app + kernel + background) if app else 0.0
        return HostCostEstimate(simulator=f"{self.integration.name}-FS",
                                host_time_units=time_units,
                                host_memory_gb=memory_gb,
                                kernel_instruction_fraction=fraction)
