"""Simulator frontends: how a workload's instructions reach the core model.

The paper distinguishes trace-based (ChampSim, Ramulator), execution-driven
(Sniper, Scarab, ZSim) and emulation-based (gem5) frontends because the
integration of Virtuoso's instruction-stream channel differs across them
(§6.2).  Functionally all three deliver the same instruction sequence; the
difference this reproduction preserves is the host cost and memory profile
(a trace frontend materialises the trace up front; an execution frontend
generates it on the fly; a memory-only frontend drops non-memory
instructions).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.core.instructions import Instruction, InstructionStream


class Frontend:
    """Interface: adapt a workload instruction iterator for the core model."""

    name = "base"
    #: Relative host-memory cost of holding the workload (traces are stored).
    trace_resident = False

    def deliver(self, instructions: Iterable[Instruction]) -> Iterator[Instruction]:
        """Yield the instructions the core model should execute."""
        raise NotImplementedError


class TraceFrontend(Frontend):
    """Trace-based frontend (ChampSim-style): the whole trace is materialised."""

    name = "trace"
    trace_resident = True

    def deliver(self, instructions: Iterable[Instruction]) -> Iterator[Instruction]:
        trace: List[Instruction] = list(instructions)
        return iter(trace)


class ExecutionFrontend(Frontend):
    """Execution-driven frontend (Sniper-style): instructions stream on the fly."""

    name = "execution"

    def deliver(self, instructions: Iterable[Instruction]) -> Iterator[Instruction]:
        return iter(instructions)


class EmulationFrontend(Frontend):
    """Emulation-based frontend (gem5-style): streamed, with functional emulation."""

    name = "emulation"

    def deliver(self, instructions: Iterable[Instruction]) -> Iterator[Instruction]:
        return iter(instructions)


class MemoryOnlyFrontend(Frontend):
    """Memory-trace frontend (Ramulator/MQSim-style): only memory operations."""

    name = "memory_only"

    def deliver(self, instructions: Iterable[Instruction]) -> Iterator[Instruction]:
        return (instruction for instruction in instructions if instruction.is_memory)


_FRONTENDS = {
    "trace": TraceFrontend,
    "execution": ExecutionFrontend,
    "emulation": EmulationFrontend,
    "memory_only": MemoryOnlyFrontend,
}


def build_frontend(kind: str) -> Frontend:
    """Factory for frontend objects."""
    frontend_class = _FRONTENDS.get(kind)
    if frontend_class is None:
        raise ValueError(f"unknown frontend kind {kind!r}; known: {sorted(_FRONTENDS)}")
    return frontend_class()
