"""Architectural-simulator integration layer.

Virtuoso is integrated with five simulators in the paper (Sniper, ChampSim,
Ramulator2, gem5-SE and MQSim).  In this reproduction a single Python
simulator plays all of those roles; what differs between "integrations" is
exactly what differed in the paper's Fig. 11/12 and Table 3: the frontend
style (trace-based, execution-driven, emulation-based, memory-only), the
instrumentation mode used for MimicOS, the integration effort (lines of
code), and the host simulation-time / memory cost model.  This package
captures those differences so the overhead studies can be reproduced.
"""

from repro.arch.cost import SimulationCostModel
from repro.arch.frontends import build_frontend
from repro.arch.integrations import (
    INTEGRATIONS,
    SimulatorIntegration,
    get_integration,
    integration_names,
)

__all__ = [
    "SimulationCostModel",
    "build_frontend",
    "INTEGRATIONS",
    "SimulatorIntegration",
    "get_integration",
    "integration_names",
]
