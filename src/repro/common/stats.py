"""Small statistics utilities used by validation and analysis code.

The paper reports accuracy as ``1 - |estimate - measured| / measured``,
page-fault-latency agreement as cosine similarity, and summarises results
with geometric means; those exact definitions live here so every benchmark
computes them the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def cosine_similarity(a: Sequence[float], b: Sequence[float]) -> float:
    """Cosine similarity between two equal-length vectors.

    Used by the paper (Fig. 9) to compare page-fault latency time-series
    between Virtuoso and the real system, because it tolerates fluctuations
    better than mean absolute error.
    """
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    if not a:
        return 1.0
    dot = sum(x * y for x, y in zip(a, b))
    norm_a = math.sqrt(sum(x * x for x in a))
    norm_b = math.sqrt(sum(y * y for y in b))
    if norm_a == 0.0 and norm_b == 0.0:
        return 1.0
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def accuracy(estimate: float, measured: float) -> float:
    """Estimation accuracy as used in the paper's validation figures.

    ``accuracy = 1 - |estimate - measured| / measured`` clamped to ``[0, 1]``.
    """
    if measured == 0.0:
        return 1.0 if estimate == 0.0 else 0.0
    error = abs(estimate - measured) / abs(measured)
    return max(0.0, 1.0 - error)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; zero values are floored to a tiny epsilon."""
    values = list(values)
    if not values:
        return 0.0
    eps = 1e-12
    log_sum = sum(math.log(max(v, eps)) for v in values)
    return math.exp(log_sum / len(values))


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Divide every value by ``reference`` (used for 'normalized to Radix' plots)."""
    if reference == 0.0:
        raise ValueError("cannot normalize to a zero reference")
    return [v / reference for v in values]


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of ``values`` at ``fraction`` in [0, 1]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class Counter:
    """A named bundle of integer event counters.

    Every hardware and OS model owns one of these; the analysis layer merges
    them into figure data.  Unknown counters read as zero, so models can add
    counters lazily.

    Hot-loop counters can be incremented through *cells* obtained from
    :meth:`hot`: a cell is a one-element list whose ``cell[0] += 1`` costs a
    list index instead of a method call and dict hash.  Pending cell values
    are folded into the named counts on every read, so :meth:`get` /
    :meth:`as_dict` always observe exact totals regardless of which path
    performed the increments.
    """

    __slots__ = ("_counts", "_hot")

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._hot: Dict[str, List[int]] = {}

    def hot(self, name: str) -> List[int]:
        """Return the mutable accumulator cell for counter ``name``.

        The same cell is returned for repeated calls, so models fetch it once
        at construction time and increment ``cell[0]`` in their hot loops.
        """
        cell = self._hot.get(name)
        if cell is None:
            cell = self._hot[name] = [0]
        return cell

    def _fold(self) -> None:
        counts = self._counts
        for name, cell in self._hot.items():
            pending = cell[0]
            if pending:
                counts[name] = counts.get(name, 0) + pending
                cell[0] = 0

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        counts = self._counts
        counts[name] = counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (zero if never incremented)."""
        if self._hot:
            self._fold()
        return self._counts.get(name, 0)

    def merge(self, other: "Counter") -> None:
        """Add all of ``other``'s counts into this counter."""
        self._fold()
        other._fold()
        counts = self._counts
        for name, value in other._counts.items():
            counts[name] = counts.get(name, 0) + value

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        if self._hot:
            self._fold()
        return dict(self._counts)

    def reset(self) -> None:
        """Zero every counter."""
        self._counts.clear()
        for cell in self._hot.values():
            cell[0] = 0

    def __repr__(self) -> str:
        self._fold()
        return f"Counter({self._counts!r})"


@dataclass
class RunningStats:
    """Streaming mean/variance/min/max without storing samples."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    total: float = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the running statistics (Welford update)."""
        self.count += 1
        self.total += value
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def variance(self) -> float:
        """Population variance of the samples seen so far."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> None:
        """Combine another RunningStats into this one."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return
        combined = self.count + other.count
        delta = other.mean - self.mean
        self._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / combined
        self.mean = (self.mean * self.count + other.mean * other.count) / combined
        self.count = combined
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


class Histogram:
    """Fixed-bucket histogram keyed by arbitrary hashable labels."""

    def __init__(self) -> None:
        self._buckets: Dict[object, int] = {}

    def add(self, bucket: object, amount: int = 1) -> None:
        """Add ``amount`` observations to ``bucket``."""
        self._buckets[bucket] = self._buckets.get(bucket, 0) + amount

    def get(self, bucket: object) -> int:
        """Count in ``bucket`` (zero if empty)."""
        return self._buckets.get(bucket, 0)

    def as_dict(self) -> Dict[object, int]:
        """Snapshot of the histogram."""
        return dict(self._buckets)

    @property
    def total(self) -> int:
        """Total number of observations."""
        return sum(self._buckets.values())


@dataclass
class LatencyDistribution:
    """A recorded set of latency samples with the summaries the paper plots.

    The page-fault latency figures (Figs. 2, 9, 16) need medians, quartiles,
    tails and the share of total latency contributed by outliers, so samples
    are retained (bounded by ``max_samples`` with reservoir-free truncation;
    simulations produce at most a few hundred thousand faults).
    """

    max_samples: int = 1_000_000
    samples: List[float] = field(default_factory=list)
    stats: RunningStats = field(default_factory=RunningStats)

    def add(self, value: float) -> None:
        """Record one latency sample."""
        self.stats.add(value)
        if len(self.samples) < self.max_samples:
            self.samples.append(value)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return self.stats.count

    @property
    def mean(self) -> float:
        """Mean latency."""
        return self.stats.mean

    @property
    def total(self) -> float:
        """Sum of all latencies (the 'total PF latency' metric of Fig. 15/16)."""
        return self.stats.total

    def percentile(self, fraction: float) -> float:
        """Percentile over the retained samples."""
        return percentile(self.samples, fraction)

    @property
    def median(self) -> float:
        """Median latency."""
        return self.percentile(0.5)

    def tail_contribution(self, threshold: float) -> float:
        """Fraction of total latency contributed by samples above ``threshold``.

        This is the 'contribution of outliers to total minor page fault
        latency' metric of Fig. 2.
        """
        if not self.samples or self.stats.total == 0.0:
            return 0.0
        outlier_total = sum(s for s in self.samples if s > threshold)
        return outlier_total / self.stats.total

    def summary(self) -> Dict[str, float]:
        """Digest used by the benchmark reports."""
        if not self.samples:
            return {"count": 0, "mean": 0.0, "median": 0.0, "p25": 0.0, "p75": 0.0,
                    "p99": 0.0, "max": 0.0, "total": 0.0}
        return {
            "count": float(self.count),
            "mean": self.mean,
            "median": self.median,
            "p25": self.percentile(0.25),
            "p75": self.percentile(0.75),
            "p99": self.percentile(0.99),
            "max": self.stats.maximum,
            "total": self.total,
        }


def mpki(misses: int, instructions: int) -> float:
    """Misses per kilo-instruction; zero when no instructions executed."""
    if instructions <= 0:
        return 0.0
    return misses * 1000.0 / instructions


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator`` with an explicit default for zero denominators."""
    if denominator == 0:
        return default
    return numerator / denominator
