"""Deterministic random-number helpers.

Every stochastic component of the simulator (workload generators, hash
functions with salts, fragmentation injection, the reference-system noise
model) draws from a :class:`DeterministicRNG` seeded explicitly, so any
experiment is exactly reproducible from its configuration.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A seeded random source with the handful of draws the simulator needs.

    Wraps :class:`random.Random` rather than numpy's generator because most
    draws are scalar and interleaved with Python control flow; numpy arrays
    are used directly by the workload generators when bulk draws matter.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, salt: int) -> "DeterministicRNG":
        """Return an independent RNG derived from this one's seed and ``salt``.

        Forking keeps components independent: adding draws to one component
        does not perturb the stream seen by another.
        """
        return DeterministicRNG((self.seed * 1_000_003 + salt) & 0xFFFFFFFF)

    def snapshot(self) -> List[object]:
        """The exact position of this RNG's stream, as a JSON-able value.

        The snapshot captures the full Mersenne-Twister state (not just the
        seed), so :meth:`restore` resumes the stream mid-flight: the fuzzer
        stores the generator cursor alongside each reproducer, and simulator
        checkpoint/restore can serialise every component RNG losslessly.
        """
        version, internal, gauss_next = self._random.getstate()
        return [version, list(internal), gauss_next]

    def restore(self, state: Sequence[object]) -> None:
        """Rewind this RNG to a :meth:`snapshot` (accepts the JSON round-trip
        of one: the internal state may arrive as a list)."""
        version, internal, gauss_next = state
        self._random.setstate((version, tuple(internal), gauss_next))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def random_list(self, count: int) -> List[float]:
        """``count`` uniform floats, drawn from the *same* stream as
        :meth:`random`.

        Bulk helper for the vectorised workload generators: calling
        ``random_list(n)`` consumes exactly the draws that ``n`` scalar
        :meth:`random` calls would, so array-building code can hoist its
        draws without perturbing reproducibility.
        """
        random = self._random.random
        return [random() for _ in range(count)]

    def randint_list(self, low: int, high: int, count: int) -> List[int]:
        """``count`` uniform integers in ``[low, high]``, stream-exact with
        ``count`` scalar :meth:`randint` calls (see :meth:`random_list`)."""
        randint = self._random.randint
        return [randint(low, high) for _ in range(count)]

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed float with the given rate."""
        return self._random.expovariate(rate)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        """Log-normally distributed float."""
        return self._random.lognormvariate(mu, sigma)

    def pareto(self, alpha: float) -> float:
        """Pareto-distributed float (heavy tail, used for VMA/footprint sizes)."""
        return self._random.paretovariate(alpha)

    def choice(self, items: Sequence[T]) -> T:
        """Pick one element uniformly."""
        return self._random.choice(items)

    def choices(self, items: Sequence[T], weights: Sequence[float], k: int) -> List[T]:
        """Pick ``k`` elements with replacement, weighted."""
        return self._random.choices(items, weights=weights, k=k)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """Pick ``k`` distinct elements."""
        return self._random.sample(items, k)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Draw an index in ``[0, n)`` following an (approximate) Zipf law.

        Used by the graph-workload generators to produce the power-law vertex
        popularity that gives graph analytics their irregular, TLB-hostile
        access patterns.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if n == 1:
            return 0
        # Inverse-CDF approximation of a bounded Zipf distribution.
        u = self._random.random()
        if skew == 1.0:
            # Harmonic normalisation approximated with log(n).
            value = int(n ** u)
        else:
            exponent = 1.0 - skew
            value = int(((n ** exponent - 1.0) * u + 1.0) ** (1.0 / exponent))
        return min(max(value - 1, 0), n - 1)
