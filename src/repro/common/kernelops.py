"""Kernel-operation records: the raw material of the imitation methodology.

Every MimicOS routine appends :class:`KernelOp` records describing the work
it performed — how many 'work units' of computation (loop iterations, list
scans, page-table updates) and which kernel data addresses it touched.  The
instrumentation layer in :mod:`repro.core.instrumentation` expands these into
instruction streams that the architectural simulator executes, so the
latency, cache pollution and DRAM interference of OS routines vary with the
work actually done instead of being a fixed constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple


@dataclass
class KernelOp:
    """One primitive operation performed by a kernel routine.

    Attributes:
        name: Routine-internal operation name (e.g. ``"buddy_split"``,
            ``"zero_page"``, ``"pt_update"``); used to pick the instruction
            mix when the op is expanded into an instruction stream.
        work_units: Abstract amount of compute work (loop iterations,
            entries scanned).  Expanded to a proportional number of ALU /
            branch instructions.
        memory_touches: Kernel-space (physical) addresses read or written by
            the operation, as ``(address, is_write)`` pairs.  These become
            the memory operands of the generated instruction stream and are
            what pollutes the caches and interferes in DRAM.
    """

    name: str
    work_units: int = 1
    memory_touches: List[Tuple[int, bool]] = field(default_factory=list)

    def touch(self, address: int, is_write: bool = False) -> None:
        """Record that this operation accessed ``address``."""
        self.memory_touches.append((address, is_write))


@dataclass
class KernelRoutineTrace:
    """The complete record of one kernel routine invocation.

    A routine (e.g. ``do_page_fault``) is a sequence of :class:`KernelOp`
    records plus an optional disk-latency component (major faults / swap-ins
    are resolved by the SSD model, not by executing instructions).
    """

    routine: str
    ops: List[KernelOp] = field(default_factory=list)
    disk_latency_cycles: int = 0

    def add(self, op: KernelOp) -> KernelOp:
        """Append an operation and return it for further annotation."""
        self.ops.append(op)
        return self

    def new_op(self, name: str, work_units: int = 1) -> KernelOp:
        """Create, append and return a new operation."""
        op = KernelOp(name=name, work_units=work_units)
        self.ops.append(op)
        return op

    def extend(self, other: "KernelRoutineTrace") -> None:
        """Inline another routine's trace (callee ops become part of this trace)."""
        self.ops.extend(other.ops)
        self.disk_latency_cycles += other.disk_latency_cycles

    @property
    def total_work_units(self) -> int:
        """Sum of work units over all operations."""
        return sum(op.work_units for op in self.ops)

    @property
    def total_memory_touches(self) -> int:
        """Total number of kernel memory accesses recorded."""
        return sum(len(op.memory_touches) for op in self.ops)

    def iter_memory_touches(self) -> Iterable[Tuple[int, bool]]:
        """Yield every (address, is_write) pair in program order."""
        for op in self.ops:
            for touch in op.memory_touches:
                yield touch

    def op_names(self) -> List[str]:
        """Names of the operations in order (useful for tests and debugging)."""
        return [op.name for op in self.ops]


class KernelAddressSpace:
    """Allocator of pseudo-addresses for kernel data structures.

    Kernel structures (buddy free lists, the page-cache radix tree, VMA
    trees, swap maps, zero pages) live in physical memory in a real system
    and their accesses fight with application data for cache and DRAM
    resources.  MimicOS models this by giving every kernel structure a
    deterministic address region carved out of the top of physical memory;
    structure code asks this class for the address of "entry i of structure
    X" when recording memory touches.
    """

    def __init__(self, base_address: int, size_bytes: int):
        if size_bytes <= 0:
            raise ValueError("kernel address space must have positive size")
        self.base_address = base_address
        self.size_bytes = size_bytes
        self._next_offset = 0
        self._regions: dict = {}

    def region(self, name: str, size_bytes: int) -> int:
        """Reserve (or return the existing) region ``name`` and return its base."""
        if name in self._regions:
            return self._regions[name][0]
        if self._next_offset + size_bytes > self.size_bytes:
            # Wrap around: kernel metadata regions are address *models*, not
            # storage, so overlap is acceptable once the budget is exhausted.
            self._next_offset = 0
        base = self.base_address + self._next_offset
        self._regions[name] = (base, size_bytes)
        self._next_offset += size_bytes
        return base

    def entry_address(self, region_name: str, index: int, entry_size: int = 64,
                      region_size: Optional[int] = None) -> int:
        """Address of entry ``index`` in region ``region_name``.

        The region is created on first use with ``region_size`` bytes
        (default 1 MB).  Indices wrap within the region.
        """
        size = region_size if region_size is not None else 1 << 20
        base = self.region(region_name, size)
        offset = (index * entry_size) % size
        return base + offset
