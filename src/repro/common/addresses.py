"""Address and page-size arithmetic used throughout the simulator.

Virtuoso models an x86-64 virtual-memory subsystem.  Addresses are plain
integers (there is no benefit to wrapping them in a class for a simulator
that manipulates millions of them), but all the arithmetic that gives those
integers meaning lives here: page alignment, virtual-page-number extraction,
and the radix-tree index split used by the x86-64 4-level page table.
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Tuple

Address = int

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

PAGE_SIZE_4K = 4 * KB
PAGE_SIZE_2M = 2 * MB
PAGE_SIZE_1G = 1 * GB

#: All page sizes supported by the x86-64 MMU model, smallest first.
PAGE_SIZES: Tuple[int, ...] = (PAGE_SIZE_4K, PAGE_SIZE_2M, PAGE_SIZE_1G)

#: Base of the fallback page-table-frame region used when no kernel frame
#: allocator is wired up (standalone page tables in unit tests).  Placed at
#: 64 TB — above any physical memory size a simulated system configures
#: (the paper's largest is 256 GB) — so fallback frames can never alias real
#: physical memory ranges; ``_BumpFrameAllocator`` asserts this at
#: construction against the configured memory size.
FALLBACK_FRAME_BASE = 1 << 46

#: Number of bits of a 4-level x86-64 virtual address that are translated.
VIRTUAL_ADDRESS_BITS = 48

#: Bits per radix level (9 bits -> 512 entries per page-table node).
RADIX_BITS_PER_LEVEL = 9

#: Number of levels of the x86-64 radix page table (PGD, PUD, PMD, PTE).
RADIX_LEVELS = 4


class PageSize(IntEnum):
    """Symbolic page sizes; the integer value is the size in bytes."""

    SIZE_4K = PAGE_SIZE_4K
    SIZE_2M = PAGE_SIZE_2M
    SIZE_1G = PAGE_SIZE_1G

    @property
    def shift(self) -> int:
        """Number of offset bits for this page size (12, 21 or 30)."""
        return int(self).bit_length() - 1

    @classmethod
    def from_bytes(cls, size: int) -> "PageSize":
        """Return the enum member for ``size`` bytes, raising on unknown sizes."""
        for member in cls:
            if int(member) == size:
                return member
        raise ValueError(f"unsupported page size: {size}")


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def align_down(address: Address, alignment: int) -> Address:
    """Round ``address`` down to a multiple of ``alignment``."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return address & ~(alignment - 1)


def align_up(address: Address, alignment: int) -> Address:
    """Round ``address`` up to a multiple of ``alignment``."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (address + alignment - 1) & ~(alignment - 1)


def is_aligned(address: Address, alignment: int) -> bool:
    """Return True if ``address`` is a multiple of ``alignment``."""
    return align_down(address, alignment) == address


def page_number(address: Address, page_size: int = PAGE_SIZE_4K) -> int:
    """Return the page number that contains ``address``."""
    return address // page_size


def page_offset(address: Address, page_size: int = PAGE_SIZE_4K) -> int:
    """Return the offset of ``address`` within its page."""
    return address % page_size


def page_base(address: Address, page_size: int = PAGE_SIZE_4K) -> Address:
    """Return the base address of the page that contains ``address``."""
    return align_down(address, page_size)


def pages_spanned(start: Address, length: int, page_size: int = PAGE_SIZE_4K) -> int:
    """Number of pages of ``page_size`` touched by ``[start, start+length)``."""
    if length <= 0:
        return 0
    first = page_number(start, page_size)
    last = page_number(start + length - 1, page_size)
    return last - first + 1


def canonical(address: Address) -> Address:
    """Mask an address down to the translated 48-bit virtual address space."""
    return address & ((1 << VIRTUAL_ADDRESS_BITS) - 1)


def split_vpn_radix(virtual_address: Address) -> List[int]:
    """Split a virtual address into its four radix page-table indices.

    Returns indices ordered from the root level (PGD, level 4) down to the
    leaf level (PTE, level 1), each in ``[0, 512)``.
    """
    address = canonical(virtual_address)
    indices = []
    for level in range(RADIX_LEVELS, 0, -1):
        shift = 12 + RADIX_BITS_PER_LEVEL * (level - 1)
        indices.append((address >> shift) & ((1 << RADIX_BITS_PER_LEVEL) - 1))
    return indices


def join_vpn_radix(indices: List[int]) -> Address:
    """Inverse of :func:`split_vpn_radix`; returns the page-aligned address."""
    if len(indices) != RADIX_LEVELS:
        raise ValueError(f"expected {RADIX_LEVELS} indices, got {len(indices)}")
    address = 0
    for level, index in zip(range(RADIX_LEVELS, 0, -1), indices):
        shift = 12 + RADIX_BITS_PER_LEVEL * (level - 1)
        address |= (index & ((1 << RADIX_BITS_PER_LEVEL) - 1)) << shift
    return address


def size_to_human(size: int) -> str:
    """Render a byte count as a short human string ('4KB', '2MB', '1GB')."""
    if size >= GB and size % GB == 0:
        return f"{size // GB}GB"
    if size >= MB and size % MB == 0:
        return f"{size // MB}MB"
    if size >= KB and size % KB == 0:
        return f"{size // KB}KB"
    return f"{size}B"
