"""Common building blocks shared by every Virtuoso subsystem.

This package holds the vocabulary of the simulator: address and page-size
arithmetic, configuration dataclasses mirroring Table 4 of the paper,
deterministic random-number helpers and small statistics utilities
(cosine similarity, accuracy, percentiles) used by the validation and
analysis code.
"""

from repro.common.addresses import (
    GB,
    KB,
    MB,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    PAGE_SIZES,
    Address,
    PageSize,
    align_down,
    align_up,
    is_aligned,
    page_number,
    page_offset,
    pages_spanned,
    split_vpn_radix,
)
from repro.common.config import (
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    MimicOSConfig,
    PageTableConfig,
    PrefetcherConfig,
    SSDConfig,
    SystemConfig,
    TLBConfig,
    baseline_system_config,
    real_system_reference_config,
    scaled_system_config,
)
from repro.common.rng import DeterministicRNG
from repro.common.stats import (
    Counter,
    Histogram,
    LatencyDistribution,
    RunningStats,
    accuracy,
    cosine_similarity,
    geometric_mean,
    normalize,
    percentile,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "PAGE_SIZE_4K",
    "PAGE_SIZE_2M",
    "PAGE_SIZE_1G",
    "PAGE_SIZES",
    "Address",
    "PageSize",
    "align_down",
    "align_up",
    "is_aligned",
    "page_number",
    "page_offset",
    "pages_spanned",
    "split_vpn_radix",
    "CacheConfig",
    "CoreConfig",
    "DRAMConfig",
    "MimicOSConfig",
    "PageTableConfig",
    "PrefetcherConfig",
    "SSDConfig",
    "SystemConfig",
    "TLBConfig",
    "baseline_system_config",
    "real_system_reference_config",
    "scaled_system_config",
    "DeterministicRNG",
    "Counter",
    "Histogram",
    "LatencyDistribution",
    "RunningStats",
    "accuracy",
    "cosine_similarity",
    "geometric_mean",
    "normalize",
    "percentile",
]
