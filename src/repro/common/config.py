"""Configuration dataclasses mirroring Table 4 of the paper.

Every simulated component is constructed from one of these configuration
objects; the two factory functions at the bottom build (i) the baseline
Virtuoso+Sniper configuration and (ii) the "real system" reference
configuration used as the validation target (the paper validates against an
Intel Xeon Gold 6226R; we substitute a high-fidelity reference configuration
of the same simulator, see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.common.addresses import GB, KB, MB, PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K


@dataclass(frozen=True)
class TLBConfig:
    """One TLB level for one (set of) page size(s)."""

    name: str
    entries: int
    associativity: int
    latency: int
    page_sizes: Tuple[int, ...] = (PAGE_SIZE_4K,)

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.associativity <= 0:
            raise ValueError("TLB entries and associativity must be positive")
        if self.entries % self.associativity != 0:
            raise ValueError(
                f"{self.name}: entries ({self.entries}) must be a multiple of "
                f"associativity ({self.associativity})"
            )

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self.entries // self.associativity


@dataclass(frozen=True)
class CacheConfig:
    """One level of the data/instruction cache hierarchy."""

    name: str
    size_bytes: int
    associativity: int
    latency: int
    line_size: int = 64
    replacement: str = "lru"  # "lru" or "srrip"

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_size) != 0:
            raise ValueError(f"{self.name}: size must divide evenly into sets")

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.associativity * self.line_size)


@dataclass(frozen=True)
class PrefetcherConfig:
    """Prefetcher attached to a cache level."""

    kind: str = "none"  # "none", "ip_stride", "stream"
    degree: int = 2
    table_entries: int = 64


@dataclass(frozen=True)
class DRAMConfig:
    """Main-memory organisation and timing (DDR4-2400-like)."""

    capacity_bytes: int = 256 * GB
    channels: int = 2
    ranks_per_channel: int = 2
    banks_per_rank: int = 16
    row_size_bytes: int = 8 * KB
    # Timings in core cycles at 2.9 GHz (paper: tRCD = tCL = 12.5 ns, tRP = 2.5 ns).
    t_rcd: int = 36
    t_cl: int = 36
    t_rp: int = 7
    page_policy: str = "open"  # "open" or "closed"

    @property
    def row_hit_latency(self) -> int:
        """Cycles for an access that hits the open row buffer."""
        return self.t_cl

    @property
    def row_miss_latency(self) -> int:
        """Cycles for an access to a closed (precharged) bank."""
        return self.t_rcd + self.t_cl

    @property
    def row_conflict_latency(self) -> int:
        """Cycles for an access that must close another open row first."""
        return self.t_rp + self.t_rcd + self.t_cl


@dataclass(frozen=True)
class CoreConfig:
    """Core performance model parameters (Sniper-like interval model)."""

    frequency_ghz: float = 2.9
    issue_width: int = 4
    base_cpi: float = 0.35
    rob_entries: int = 224
    # Fraction of a long-latency miss that the out-of-order window can hide.
    mlp_factor: float = 0.45


@dataclass(frozen=True)
class PageTableConfig:
    """Which translation structure the simulated system uses and its knobs."""

    kind: str = "radix"  # radix | ech | hdc | ht | utopia | rmm | midgard | direct_segment | vbi
    # Radix parameters.
    levels: int = 4
    pwc_entries: int = 32
    pwc_associativity: int = 4
    pwc_latency: int = 2
    # Hash-table parameters (ECH / HDC / HT).
    hash_table_size_bytes: int = 4 * GB
    hash_ways: int = 4
    ptes_per_entry: int = 8
    cuckoo_ways: int = 4
    cwc_latency: int = 2
    # Utopia parameters.
    restseg_size_bytes: int = 8 * GB
    restseg_associativity: int = 16
    tar_cache_latency: int = 2
    sf_cache_latency: int = 2
    # RMM parameters.
    rlb_entries: int = 64
    rlb_latency: int = 9
    eager_paging_max_order: int = 21
    # Midgard parameters.
    l1_vlb_entries: int = 64
    l1_vlb_latency: int = 1
    l2_vlb_entries: int = 16
    l2_vlb_latency: int = 4
    backend_levels: int = 6
    # Direct segment parameters.
    direct_segment_size_bytes: int = 32 * GB


@dataclass(frozen=True)
class SSDConfig:
    """MQSim-like SSD latency model used for swap traffic."""

    read_latency_us: float = 60.0
    write_latency_us: float = 15.0
    channels: int = 8
    queue_depth: int = 64
    per_request_overhead_us: float = 5.0


@dataclass(frozen=True)
class MimicOSConfig:
    """MimicOS kernel configuration (the OS half of Table 4)."""

    physical_memory_bytes: int = 256 * GB
    thp_policy: str = "linux"  # never | linux | cr_thp | ar_thp | bd
    thp_reservation_threshold: float = 0.5  # CR-THP: promote at >50 % utilisation
    hugetlbfs_reserved_bytes: int = 0
    swap_size_bytes: int = 4 * GB
    swap_threshold: float = 0.90  # start swapping above 90 % memory usage
    fragmentation_target: float = 0.80  # fraction of 2 MB blocks still free
    page_cache_size_bytes: int = 8 * GB
    khugepaged_scan_pages: int = 512
    zeroing_bytes_per_cycle: int = 64
    kernel_modules: Tuple[str, ...] = (
        "page_fault",
        "buddy_allocator",
        "slab_allocator",
        "thp",
        "page_cache",
        "swap",
    )


@dataclass(frozen=True)
class VirtualizationConfig:
    """Virtualised execution (§6.1): a guest MimicOS over a hypervisor MimicOS.

    When ``enabled``, the engine spawns *two* MimicOS instances — the
    system's :class:`MimicOSConfig` describes the hypervisor (host), and the
    guest kernel is derived from the fields below — couples them through a
    :class:`~repro.mimicos.hypervisor.VirtualMachine`, and switches the MMU
    to two-dimensional translation (guest page table x nested/extended page
    table) with a nested TLB in front.
    """

    enabled: bool = False
    #: Guest "physical" memory: a region of the hypervisor's virtual address
    #: space, backed lazily by host page faults.
    guest_memory_bytes: int = 128 * MB
    #: Translation structure the guest kernel gives its processes (the host
    #: side uses the system-wide :class:`PageTableConfig`).
    guest_page_table: PageTableConfig = field(default_factory=PageTableConfig)
    #: THP policy inside the guest kernel.
    guest_thp_policy: str = "linux"
    #: Guest-side swap (0: the guest never swaps; host-side reclaim still
    #: applies to the frames backing guest RAM).
    guest_swap_size_bytes: int = 0
    #: Entries in the per-core nested (guest-virtual -> host-physical) TLB.
    nested_tlb_entries: int = 64


@dataclass(frozen=True)
class SimulationConfig:
    """How the architectural simulator couples to MimicOS."""

    # "imitation" = Virtuoso; "emulation" = fixed-latency baseline;
    # "full_system" = full-kernel stand-in used for Fig. 11/12 comparisons.
    os_mode: str = "imitation"
    fixed_ptw_latency: int = 50
    fixed_page_fault_latency: int = 3000
    # Frontend style stands in for the host simulator (Fig. 11).
    frontend: str = "trace"  # trace | execution | emulation | memory_only
    instrumentation: str = "online"  # online | offline | reuse_emulation
    max_instructions: Optional[int] = None
    # Host-side execution engine: "batch" consumes array-backed instruction
    # chunks through the allocation-free fast path; "legacy" executes one
    # Instruction object at a time.  Simulated results are identical; the
    # knob exists for the invariance tests and the KIPS harness baseline.
    engine: str = "batch"
    # Instructions per chunk handed to CoreModel.execute_batch.
    batch_size: int = 4096


@dataclass(frozen=True)
class SystemConfig:
    """The complete simulated system: one object describes one experiment."""

    name: str = "virtuoso-baseline"
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i_tlb: TLBConfig = field(default_factory=lambda: TLBConfig(
        "L1-ITLB", entries=128, associativity=8, latency=1))
    l1d_tlb_4k: TLBConfig = field(default_factory=lambda: TLBConfig(
        "L1-DTLB-4K", entries=64, associativity=4, latency=1))
    l1d_tlb_2m: TLBConfig = field(default_factory=lambda: TLBConfig(
        "L1-DTLB-2M", entries=32, associativity=4, latency=1,
        page_sizes=(PAGE_SIZE_2M,)))
    l2_tlb: TLBConfig = field(default_factory=lambda: TLBConfig(
        "L2-TLB", entries=2048, associativity=16, latency=12,
        page_sizes=(PAGE_SIZE_4K, PAGE_SIZE_2M)))
    l1d_cache: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1-D", size_bytes=32 * KB, associativity=8, latency=4))
    l1i_cache: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1-I", size_bytes=32 * KB, associativity=8, latency=4))
    l2_cache: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L2", size_bytes=2 * MB, associativity=16, latency=16, replacement="srrip"))
    l3_cache: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L3", size_bytes=2 * MB, associativity=16, latency=35, replacement="srrip"))
    l1_prefetcher: PrefetcherConfig = field(default_factory=lambda: PrefetcherConfig("ip_stride"))
    l2_prefetcher: PrefetcherConfig = field(default_factory=lambda: PrefetcherConfig("stream"))
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    page_table: PageTableConfig = field(default_factory=PageTableConfig)
    mimicos: MimicOSConfig = field(default_factory=MimicOSConfig)
    ssd: SSDConfig = field(default_factory=SSDConfig)
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    virtualization: VirtualizationConfig = field(default_factory=VirtualizationConfig)

    def with_page_table(self, page_table: PageTableConfig, name: Optional[str] = None) -> "SystemConfig":
        """Copy of this configuration with a different translation scheme."""
        return replace(self, page_table=page_table, name=name or f"{self.name}+{page_table.kind}")

    def with_mimicos(self, mimicos: MimicOSConfig, name: Optional[str] = None) -> "SystemConfig":
        """Copy of this configuration with different OS parameters."""
        return replace(self, mimicos=mimicos, name=name or self.name)

    def with_simulation(self, simulation: SimulationConfig, name: Optional[str] = None) -> "SystemConfig":
        """Copy of this configuration with a different simulation coupling mode."""
        return replace(self, simulation=simulation, name=name or self.name)

    def with_virtualization(self, virtualization: VirtualizationConfig,
                            name: Optional[str] = None) -> "SystemConfig":
        """Copy of this configuration running the workload inside a guest VM."""
        return replace(self, virtualization=virtualization, name=name or self.name)


def baseline_system_config(physical_memory_bytes: int = 16 * GB,
                           fragmentation_target: float = 0.80) -> SystemConfig:
    """The baseline Virtuoso+Sniper configuration of Table 4.

    ``physical_memory_bytes`` defaults to a laptop-scale 16 GB (instead of the
    paper's 256 GB) so tests and benchmarks run quickly; experiments that need
    larger memories override it explicitly.
    """
    return SystemConfig(
        name="virtuoso-sniper",
        mimicos=MimicOSConfig(
            physical_memory_bytes=physical_memory_bytes,
            fragmentation_target=fragmentation_target,
        ),
        dram=DRAMConfig(capacity_bytes=physical_memory_bytes),
    )


def real_system_reference_config(physical_memory_bytes: int = 16 * GB) -> SystemConfig:
    """The high-fidelity reference configuration standing in for the real CPU.

    Mirrors the baseline but with the reference (validation-target) simulation
    mode and slightly richer structures, matching the role the Xeon Gold 6226R
    plays in the paper's validation (§7.2).
    """
    base = baseline_system_config(physical_memory_bytes)
    return replace(
        base,
        name="real-system-reference",
        simulation=SimulationConfig(os_mode="reference"),
    )


def scaled_system_config(name: str = "virtuoso-scaled",
                         physical_memory_bytes: int = 2 * GB,
                         tlb_scale: int = 8,
                         cache_scale: int = 8,
                         fragmentation_target: float = 0.80,
                         thp_policy: str = "linux") -> SystemConfig:
    """A proportionally scaled-down system for laptop-scale experiments.

    The paper's workloads have 10-100 GB footprints; reproducing the same
    *pressure ratios* (working set vs. TLB reach, footprint vs. cache and
    memory capacity) with megabyte-scale synthetic workloads requires
    shrinking the hardware structures by the same factor.  The benchmarks use
    this configuration; the Table 4 configuration itself is produced by
    :func:`baseline_system_config` and rendered by the configuration bench.
    """
    def scale_tlb(config: TLBConfig) -> TLBConfig:
        entries = max(config.associativity, config.entries // tlb_scale)
        entries -= entries % config.associativity
        return replace(config, entries=max(config.associativity, entries))

    base = baseline_system_config(physical_memory_bytes, fragmentation_target)
    return replace(
        base,
        name=name,
        l1i_tlb=scale_tlb(base.l1i_tlb),
        l1d_tlb_4k=scale_tlb(base.l1d_tlb_4k),
        l1d_tlb_2m=scale_tlb(base.l1d_tlb_2m),
        l2_tlb=scale_tlb(base.l2_tlb),
        l2_cache=replace(base.l2_cache, size_bytes=max(64 * KB, base.l2_cache.size_bytes // cache_scale)),
        l3_cache=replace(base.l3_cache, size_bytes=max(128 * KB, base.l3_cache.size_bytes // cache_scale)),
        dram=replace(base.dram, capacity_bytes=physical_memory_bytes),
        mimicos=replace(base.mimicos,
                        physical_memory_bytes=physical_memory_bytes,
                        fragmentation_target=fragmentation_target,
                        thp_policy=thp_policy,
                        swap_size_bytes=min(base.mimicos.swap_size_bytes,
                                            physical_memory_bytes // 4),
                        page_cache_size_bytes=min(base.mimicos.page_cache_size_bytes,
                                                  physical_memory_bytes // 4)),
    )


#: Page-table configurations of Table 4 used by the case studies (§7.4-§7.6).
CASE_STUDY_PAGE_TABLES: Dict[str, PageTableConfig] = {
    "radix": PageTableConfig(kind="radix"),
    "ech": PageTableConfig(kind="ech", hash_ways=4, cuckoo_ways=4),
    "hdc": PageTableConfig(kind="hdc", hash_table_size_bytes=4 * GB, ptes_per_entry=8),
    "ht": PageTableConfig(kind="ht", hash_table_size_bytes=4 * GB, ptes_per_entry=8),
    "utopia": PageTableConfig(kind="utopia", restseg_size_bytes=8 * GB),
    "rmm": PageTableConfig(kind="rmm", rlb_entries=64, rlb_latency=9),
    "midgard": PageTableConfig(kind="midgard"),
    "direct_segment": PageTableConfig(kind="direct_segment"),
    "vbi": PageTableConfig(kind="vbi"),
}
