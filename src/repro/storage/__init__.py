"""Storage substrate: an MQSim-like multi-queue SSD latency model.

The original artifact couples Virtuoso with MQSim to model the disk side of
major page faults and swapping (Use Case 4 / Fig. 20).  This package
provides a queueing latency model of a multi-channel NVMe SSD that serves
the same role: it returns a latency in core cycles for every read/write
request, including queueing delay when many requests arrive close together.
"""

from repro.storage.ssd import SSDModel, SSDRequestResult

__all__ = ["SSDModel", "SSDRequestResult"]
