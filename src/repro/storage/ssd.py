"""MQSim-inspired SSD latency model used for swap and major page faults.

The model is intentionally a latency/queueing model rather than a flash
translation layer simulator: the experiments that use it (major faults in
the page-fault path and the swapping-activity study of Fig. 20) need
realistic read/program latencies, per-channel parallelism and queueing
delay under bursts — not wear levelling or garbage collection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.config import SSDConfig
from repro.common.stats import Counter


@dataclass
class SSDRequestResult:
    """Outcome of one SSD request."""

    latency_cycles: int
    queue_delay_cycles: int
    channel: int


class SSDModel:
    """A multi-channel SSD with per-channel service queues.

    Requests are striped over channels by logical block address.  Each
    channel is modelled as a single server: a request's completion time is
    ``max(now, channel_free_time) + service_time`` and the channel busy time
    advances accordingly, which yields queueing delay under swap storms.
    """

    def __init__(self, config: SSDConfig, core_frequency_ghz: float = 2.9):
        self.config = config
        self.cycles_per_us = core_frequency_ghz * 1000.0
        self._channel_free_at: List[float] = [0.0] * config.channels
        self.counters = Counter()

    def _service_cycles(self, is_write: bool) -> float:
        base_us = self.config.write_latency_us if is_write else self.config.read_latency_us
        return (base_us + self.config.per_request_overhead_us) * self.cycles_per_us

    def access(self, logical_block: int, is_write: bool, now_cycles: int = 0) -> SSDRequestResult:
        """Issue one 4 KB request and return its latency including queueing."""
        channel = logical_block % self.config.channels
        service = self._service_cycles(is_write)
        start = max(float(now_cycles), self._channel_free_at[channel])
        queue_delay = start - float(now_cycles)
        completion = start + service
        self._channel_free_at[channel] = completion
        latency = completion - float(now_cycles)

        self.counters.add("writes" if is_write else "reads")
        self.counters.add("queue_delay_cycles", int(queue_delay))
        self.counters.add("busy_cycles", int(service))
        return SSDRequestResult(latency_cycles=int(latency),
                                queue_delay_cycles=int(queue_delay),
                                channel=channel)

    def read(self, logical_block: int, now_cycles: int = 0) -> SSDRequestResult:
        """4 KB read."""
        return self.access(logical_block, is_write=False, now_cycles=now_cycles)

    def write(self, logical_block: int, now_cycles: int = 0) -> SSDRequestResult:
        """4 KB write."""
        return self.access(logical_block, is_write=True, now_cycles=now_cycles)

    def stats(self) -> Dict[str, int]:
        """Raw counter snapshot."""
        return self.counters.as_dict()
