#!/usr/bin/env python3
"""Quickstart: simulate one workload on Virtuoso and print the report.

This example builds a laptop-scale Virtuoso system (MimicOS + TLBs + radix
page table + caches + DRAM), runs a graph-analytics workload through it and
prints the headline metrics: IPC, L2 TLB MPKI, average page-table-walk
latency and the page-fault statistics.

Run with::

    python examples/quickstart.py
"""

from repro import Virtuoso, scaled_system_config
from repro.workloads import GraphWorkload, JSONWorkload
from repro.workloads.base import vectorization_enabled


def print_engine_throughput(config, report) -> None:
    """Show which host engine ran the simulation and how fast it went."""
    simulated = report.instructions + report.kernel_instructions
    kips = simulated / 1000.0 / report.host_seconds if report.host_seconds else 0.0
    generation = "numpy-vectorised" if vectorization_enabled() else "pure-python"
    print(f"  {'engine':>22}: {config.simulation.engine} ({generation} generation)")
    print(f"  {'host throughput':>22}: {kips:,.0f} KIPS "
          f"({simulated:,} simulated instructions in {report.host_seconds:.3f} s)")


def main() -> None:
    config = scaled_system_config(name="quickstart", physical_memory_bytes=1 << 30)

    print("== Long-running, translation-bound workload (BFS) ==")
    system = Virtuoso(config, seed=1)
    bfs = GraphWorkload("BFS", footprint_bytes=32 << 20, memory_operations=8000,
                        prefault=True)
    report = system.run(bfs)
    for key, value in report.summary().items():
        print(f"  {key:>22}: {value}")
    print_engine_throughput(config, report)

    print()
    print("== Short-running, allocation-bound workload (JSON deserialisation) ==")
    system = Virtuoso(config, seed=2)
    report = system.run(JSONWorkload(scale=0.5))
    for key, value in report.summary().items():
        print(f"  {key:>22}: {value}")
    print(f"  {'fault latency p50':>22}: {report.fault_latency.median:.0f} cycles")
    print(f"  {'fault latency p99':>22}: {report.fault_latency.percentile(0.99):.0f} cycles")
    print(f"  {'MimicOS instructions':>22}: {report.kernel_instructions}")
    print_engine_throughput(config, report)


if __name__ == "__main__":
    main()
