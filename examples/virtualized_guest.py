#!/usr/bin/env python3
"""Virtualised execution example: a guest MimicOS on a hypervisor MimicOS.

Virtuoso models virtual machines (§6.1 of the paper) as a first-class engine
mode: ``SystemConfig.virtualization`` spawns two MimicOS instances — the
guest OS handles the application's page faults against guest-physical
memory, the hypervisor backs guest RAM lazily with its own page faults —
and the MMU translates two-dimensionally (guest page table x nested page
table) with a nested TLB in front.  Both kernels' handler streams are
injected into the faulting core, so a nested fault costs two kernel streams
plus both levels' disk latency.

Run with::

    python examples/virtualized_guest.py
"""

from repro.common.addresses import MB
from repro.common.config import VirtualizationConfig, scaled_system_config
from repro.core.virtuoso import Virtuoso
from repro.workloads.base import vectorization_enabled
from repro.workloads.multiproc import GuestMixWorkload


def main() -> None:
    config = scaled_system_config(name="virtualized-demo",
                                  physical_memory_bytes=1 << 30,
                                  fragmentation_target=1.0)
    config = config.with_virtualization(VirtualizationConfig(
        enabled=True, guest_memory_bytes=256 * MB, nested_tlb_entries=512))

    system = Virtuoso(config, seed=7)
    workload = GuestMixWorkload(footprint_bytes=16 * MB, hot_operations=8000,
                                seed=1)
    report = system.run(workload)

    vm = system.vm.stats()
    nested = system.mmu.nested_unit.stats()
    coupling = system.coupling.counters.as_dict()
    print(f"guest page faults handled:        {vm.get('guest_page_faults', 0)}")
    print(f"hypervisor backing faults taken:  {vm.get('hypervisor_backing_faults', 0)}")
    print(f"EPT violations (backing only):    {vm.get('ept_violations', 0)}")
    print(f"kernel streams on faulting core:  {coupling.get('page_faults', 0)} guest + "
          f"{coupling.get('hypervisor_faults', 0)} hypervisor")
    print(f"2-D walks performed:              {nested.get('nested_walks', 0)} "
          f"({nested.get('nested_tlb_hits', 0)} nested-TLB hits)")

    # Two-dimensional walk cost through the real memory hierarchy: a cold
    # walk pays the O(n*m) 2-D blow-up in actual cache/DRAM accesses, a
    # nested-TLB hit pays none.
    unit = system.mmu.nested_unit
    probe = workload._vmas[0].start
    unit.nested_tlb.invalidate(probe)
    cold = unit.walk(probe, system.memory)
    warm = unit.walk(probe, system.memory)
    print(f"2-D (nested) walk, cold:          {cold.memory_accesses} memory accesses "
          f"({cold.guest_latency} guest + {cold.host_latency} host cycles)")
    print(f"2-D (nested) walk, nested-TLB hit: {warm.memory_accesses} memory accesses")

    simulated = report.instructions + report.kernel_instructions
    kips = simulated / 1000.0 / report.host_seconds if report.host_seconds else 0.0
    generation = "numpy-vectorised" if vectorization_enabled() else "pure-python"
    print(f"  {'engine':>22}: {config.simulation.engine} ({generation} generation, "
          "virtualized mode)")
    print(f"  {'host throughput':>22}: {kips:,.0f} KIPS "
          f"({simulated:,} simulated instructions in {report.host_seconds:.3f} s)")


if __name__ == "__main__":
    main()
