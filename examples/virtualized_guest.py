#!/usr/bin/env python3
"""Virtualised execution example: a guest MimicOS on a hypervisor MimicOS.

Virtuoso models virtual machines by spawning two MimicOS instances (§6.1 of
the paper): the guest OS handles the application's page faults against
guest-physical memory, and the hypervisor backs guest RAM lazily, taking its
own page faults.  Address translation becomes two-dimensional (guest page
table x nested page table), modelled by the nested translation unit.

Run with::

    python examples/virtualized_guest.py
"""

import time

from repro.common.addresses import MB, PAGE_SIZE_2M
from repro.common.config import MimicOSConfig, PageTableConfig, SimulationConfig
from repro.mimicos import MimicOS, VirtualMachine
from repro.mmu.nested import NestedTranslationUnit
from repro.workloads.base import vectorization_enabled


class _FlatMemory:
    """Constant-latency memory stand-in for the nested-walk illustration."""

    def access_address(self, address, is_write=False, access_type=None, pc=0):
        return 50


def main() -> None:
    host = MimicOS(MimicOSConfig(physical_memory_bytes=1 << 30, fragmentation_target=1.0),
                   PageTableConfig(kind="radix"))
    vm = VirtualMachine(host, guest_memory_bytes=256 * MB, name="vm0")
    process = vm.create_guest_process("guest-app")
    vma = vm.guest_mmap(process, 32 * MB)

    guest_faults = 0
    hypervisor_faults = 0
    guest_work = 0
    host_work = 0
    start_wall = time.perf_counter()
    for offset in range(0, 16 * MB, PAGE_SIZE_2M):
        result = vm.handle_guest_page_fault(process.pid, vma.start + offset)
        guest_faults += 1
        guest_work += result.guest.trace.total_work_units
        if result.host is not None:
            hypervisor_faults += 1
            host_work += result.host.trace.total_work_units
    host_seconds = time.perf_counter() - start_wall

    print(f"guest page faults handled:        {guest_faults}")
    print(f"hypervisor backing faults taken:  {hypervisor_faults}")
    print(f"guest kernel work units:          {guest_work}")
    print(f"hypervisor kernel work units:     {host_work}")

    # This example drives MimicOS functionally (no core model in the loop),
    # so host throughput is reported in kernel work units — the quantity the
    # instrumentation layer would expand into instructions under a coupling.
    total_work = guest_work + host_work
    kwups = total_work / 1000.0 / host_seconds if host_seconds else 0.0
    generation = "numpy-vectorised" if vectorization_enabled() else "pure-python"
    engine = SimulationConfig().engine
    print(f"default engine:                   {engine} ({generation} generation; "
          "not exercised here — this demo is functional-only)")
    print(f"host throughput:                  {kwups:,.0f} kilo-work-units/s "
          f"({total_work:,} work units in {host_seconds:.4f} s)")

    unit = vm.nested_translation_unit(process)
    cold = unit.walk(vma.start, _FlatMemory())
    warm = unit.walk(vma.start, _FlatMemory())
    print(f"2-D (nested) walk, cold:          {cold.memory_accesses} memory accesses")
    print(f"2-D (nested) walk, nested-TLB hit: {warm.memory_accesses} memory accesses")


if __name__ == "__main__":
    main()
