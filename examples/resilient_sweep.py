"""Fault-tolerant sweeps: crash a worker mid-grid, finish bit-identical.

Demonstrates the experiment service (`repro.experiments.service`):

1. run an 8-point sweep sequentially — the straight-line baseline;
2. run the same grid on the durable service with a seeded FaultPlan
   injecting a worker crash, a hang (killed by the per-job timeout) and
   a transient exception — retries/backoff recover every point and the
   final digest fingerprint matches the baseline exactly;
3. run it a third time against the same store — every point is served
   from the content-addressed result cache, no simulation executes.

Run from the repo root::

    PYTHONPATH=src python examples/resilient_sweep.py
"""

from __future__ import annotations

import tempfile

from repro.experiments.faultinject import FaultPlan
from repro.experiments.service import demo_grid, run_resilient_sweep
from repro.experiments.sweep import run_sweep


def main() -> None:
    points = demo_grid(8, memory_operations=3000)
    print(f"grid: {len(points)} points")

    straight = run_sweep(points, workers=1)
    print(f"straight-line run: {straight['wall_seconds']:.2f}s, "
          f"sha {straight['simulated_sha256'][:16]}…")

    plan = FaultPlan.seeded([p.name for p in points], seed=42,
                            crashes=1, hangs=1, flaky=1, flaky_attempts=1)
    for action in plan.actions:
        print(f"  injecting {action.kind} into {action.job} "
              f"(attempt {action.attempt})")

    with tempfile.TemporaryDirectory(prefix="repro-resilient-") as root:
        faulted = run_resilient_sweep(points, store_root=root, workers=2,
                                      timeout=2.0, retries=3, backoff=0.05,
                                      fault_plan=plan)
        counters = faulted["service"]
        print(f"faulted run: {faulted['wall_seconds']:.2f}s — "
              f"crashes={counters['crashes']} timeouts={counters['timeouts']} "
              f"transient={counters['transient_failures']} "
              f"retries={counters['retries']} "
              f"quarantined={counters['quarantined']}")
        identical = faulted["simulated_sha256"] == straight["simulated_sha256"]
        print(f"  digest identical to straight-line: {identical}")

        cached = run_resilient_sweep(points, store_root=root, workers=2)
        print(f"cached rerun: {cached['wall_seconds']:.2f}s — "
              f"cache hit rate {cached['service']['cache_hit_rate']:.0%}, "
              f"executed {cached['service']['executed']} point(s)")
        assert identical
        assert cached["simulated_sha256"] == straight["simulated_sha256"]


if __name__ == "__main__":
    main()
