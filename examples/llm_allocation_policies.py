#!/usr/bin/env python3
"""Case-study example: memory-allocation policies under LLM inference.

Reproduces the flavour of the paper's Use Case 2 (Fig. 16): the same
Llama-like inference workload is run under four physical-memory allocation
policies — the plain buddy allocator (BD), conservative and aggressive
reservation-based THP, and Utopia's restrictive hash-based placement — and
the page-fault latency distribution of each policy is printed.

Run with::

    python examples/llm_allocation_policies.py
"""

from repro import Virtuoso, scaled_system_config
from repro.analysis.reporting import format_table
from repro.common.config import PageTableConfig
from repro.workloads import LLMInferenceWorkload
from repro.workloads.base import vectorization_enabled


def run_policy(thp_policy: str, page_table_kind: str = "radix"):
    config = scaled_system_config(name=f"llm-{thp_policy}-{page_table_kind}",
                                  physical_memory_bytes=1 << 30,
                                  thp_policy=thp_policy)
    config = config.with_page_table(PageTableConfig(kind=page_table_kind))
    system = Virtuoso(config, seed=11)
    workload = LLMInferenceWorkload("Llama", scale=0.5, weight_read_scale=0.2)
    return config, system.run(workload)


def main() -> None:
    policies = [
        ("BD (4 KB buddy only)", "bd", "radix"),
        ("CR-THP (promote at 50 %)", "cr_thp", "radix"),
        ("AR-THP (promote at 10 %)", "ar_thp", "radix"),
        ("Utopia RestSeg", "bd", "utopia"),
    ]
    rows = []
    engine = "?"
    total_simulated = 0
    total_host_seconds = 0.0
    for label, policy, page_table in policies:
        config, report = run_policy(policy, page_table)
        engine = config.simulation.engine
        total_simulated += report.instructions + report.kernel_instructions
        total_host_seconds += report.host_seconds
        dist = report.fault_latency
        rows.append([
            label,
            dist.count,
            round(dist.median, 0),
            round(dist.percentile(0.99), 0),
            round(dist.stats.maximum, 0),
            round(dist.mean, 0),
        ])
    print(format_table(
        ["allocation policy", "faults", "p50 (cyc)", "p99 (cyc)", "max (cyc)", "mean (cyc)"],
        rows,
        title="Page-fault latency under different allocation policies (Llama inference)"))
    print()
    kips = total_simulated / 1000.0 / total_host_seconds if total_host_seconds else 0.0
    generation = "numpy-vectorised" if vectorization_enabled() else "pure-python"
    print(f"[{engine} engine, {generation} generation: {total_simulated:,} simulated "
          f"instructions across {len(policies)} policies at {kips:,.0f} KIPS]")
    print()
    print("Reservation-based THP keeps the median low but grows a heavy tail")
    print("(promotions zero and remap whole 2 MB regions); Utopia's restrictive")
    print("hash-based placement keeps every fault cheap and bounded (no tail).")


if __name__ == "__main__":
    main()
