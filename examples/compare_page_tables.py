#!/usr/bin/env python3
"""Case-study example: compare page-table designs (Use Case 1 of the paper).

Runs the same random-access workload over four translation structures —
the x86-64 radix tree, elastic cuckoo hashing (ECH), the open-addressing
hashed page table (HDC) and the chained hash table (HT) — and prints, for
each design, the average PTW latency, the memory accesses per walk, the
DRAM row-buffer conflicts caused by translation metadata, and the total
minor-page-fault latency.

Run with::

    python examples/compare_page_tables.py
"""

from dataclasses import replace

from repro import Virtuoso, scaled_system_config
from repro.analysis.reporting import format_table
from repro.common.config import PageTableConfig
from repro.workloads import GUPSWorkload
from repro.workloads.base import vectorization_enabled

DESIGNS = {
    "radix": PageTableConfig(kind="radix", pwc_entries=4, pwc_associativity=4),
    "ech": PageTableConfig(kind="ech"),
    "hdc": PageTableConfig(kind="hdc"),
    "ht": PageTableConfig(kind="ht"),
}


def run_design(name: str, page_table: PageTableConfig):
    config = scaled_system_config(name=f"pt-{name}", physical_memory_bytes=1 << 30,
                                  thp_policy="linux", fragmentation_target=0.10)
    config = config.with_page_table(page_table)
    config = replace(config, mimicos=replace(config.mimicos, swap_threshold=1.0))
    system = Virtuoso(config, seed=7)
    workload = GUPSWorkload(footprint_bytes=24 << 20, memory_operations=4000,
                            prefault=False)
    return config, system.run(workload)


def main() -> None:
    rows = []
    engine = "?"
    total_simulated = 0
    total_host_seconds = 0.0
    for name, page_table in DESIGNS.items():
        config, report = run_design(name, page_table)
        engine = config.simulation.engine
        total_simulated += report.instructions + report.kernel_instructions
        total_host_seconds += report.host_seconds
        walks = max(1, report.page_walks)
        accesses_per_walk = (report.details["mmu"]["counters"]
                             .get("ptw_memory_accesses", 0) / walks)
        rows.append([
            name,
            round(report.average_ptw_latency, 1),
            round(accesses_per_walk, 2),
            report.dram_row_conflicts_translation,
            round(report.total_fault_latency / 1000.0, 1),
            round(report.ipc, 3),
        ])
    print(format_table(
        ["design", "avg PTW latency (cyc)", "accesses/walk",
         "translation row conflicts", "total MPF latency (kcyc)", "IPC"],
        rows,
        title="Page-table designs on a fragmented system (randacc workload)"))
    print()
    kips = total_simulated / 1000.0 / total_host_seconds if total_host_seconds else 0.0
    generation = "numpy-vectorised" if vectorization_enabled() else "pure-python"
    print(f"[{engine} engine, {generation} generation: {total_simulated:,} simulated "
          f"instructions across {len(DESIGNS)} designs at {kips:,.0f} KIPS]")


if __name__ == "__main__":
    main()
