#!/usr/bin/env python3
"""Multi-core example: two processes contending on the shared LLC and DRAM.

Runs a cache-hostile random-access (GUPS) workload twice: first alone on a
single-core system, then co-running with a second GUPS process on a two-core
``MultiCoreVirtuoso`` — private L1s and TLBs per core, shared L2/LLC/DRAM,
one MimicOS arbitrating every core's page faults.  The solo-vs-corun
comparison shows the interference the multi-programmed model exposes: the
co-runners evict each other's LLC lines and disturb each other's DRAM row
buffers, so each core's IPC drops below the solo run's.

Run with::

    python examples/multicore_contention.py
"""

from repro import MultiCoreVirtuoso, scaled_system_config
from repro.analysis.reporting import format_table
from repro.workloads import contention_pair
from repro.workloads.base import vectorization_enabled
from repro.workloads.hpc import GUPSWorkload


def build_system(num_cores: int):
    config = scaled_system_config(name=f"contention-{num_cores}core",
                                  physical_memory_bytes=1 << 30,
                                  fragmentation_target=1.0)
    return config, MultiCoreVirtuoso(config, num_cores=num_cores, seed=7)


def main() -> None:
    # Sized so one footprint fits the (scaled) LLC but two do not — the
    # regime where co-running genuinely evicts the neighbour's lines.
    operations = 6000
    footprint = 256 << 10

    config, solo_system = build_system(1)
    solo = solo_system.run([GUPSWorkload(footprint_bytes=footprint,
                                         memory_operations=operations,
                                         prefault=True, seed=1)])
    solo_report = solo.core_reports[0]

    _, duo_system = build_system(2)
    duo = duo_system.run(contention_pair(footprint_bytes=footprint,
                                         memory_operations=operations, seed=1))

    rows = [["solo (1 core)", 0, round(solo_report.ipc, 3),
             solo_report.llc_misses, solo_report.dram_accesses,
             solo_report.dram_row_conflicts]]
    for index, report in enumerate(duo.core_reports):
        rows.append([f"co-run (2 cores)", index, round(report.ipc, 3),
                     duo.merged.llc_misses, duo.merged.dram_accesses,
                     duo.merged.dram_row_conflicts])
    print(format_table(
        ["scenario", "core", "IPC", "LLC misses*", "DRAM accesses*",
         "row conflicts*"],
        rows,
        title="Shared-LLC/DRAM contention, random-access co-runners "
              "(* = system-wide)"))
    print()
    slowdown = solo_report.ipc / min(r.ipc for r in duo.core_reports)
    print(f"worst co-runner slowdown vs solo: {slowdown:.2f}x "
          "(shared-cache eviction + DRAM row-buffer interference)")

    simulated = duo.merged.instructions + duo.merged.kernel_instructions
    generation = "numpy-vectorised" if vectorization_enabled() else "pure-python"
    print(f"  {'engine':>22}: {config.simulation.engine} ({generation} generation, "
          f"{duo_system.num_cores} simulated cores)")
    print(f"  {'host throughput':>22}: {duo.kips:,.0f} KIPS "
          f"({simulated:,} simulated instructions in {duo.host_seconds:.3f} s)")


if __name__ == "__main__":
    main()
