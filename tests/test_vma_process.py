"""Tests for virtual memory areas, the VMA manager and processes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.addresses import GB, KB, MB, PAGE_SIZE_4K
from repro.common.kernelops import KernelRoutineTrace
from repro.mimicos.process import Process
from repro.mimicos.vma import (
    VMAKind,
    VMAManager,
    VMANotFoundError,
    VirtualMemoryArea,
    vma_size_bucket,
)


class TestVirtualMemoryArea:
    def test_size_and_contains(self):
        vma = VirtualMemoryArea(start=0x1000, end=0x3000)
        assert vma.size == 0x2000
        assert vma.contains(0x1000)
        assert vma.contains(0x2FFF)
        assert not vma.contains(0x3000)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            VirtualMemoryArea(start=0x2000, end=0x1000)

    def test_kind_helpers(self):
        anon = VirtualMemoryArea(0, 0x1000, kind=VMAKind.ANONYMOUS)
        file_backed = VirtualMemoryArea(0x10000, 0x11000, kind=VMAKind.FILE_BACKED)
        dax = VirtualMemoryArea(0x20000, 0x21000, kind=VMAKind.DAX)
        assert anon.is_anonymous and not anon.is_file_backed
        assert file_backed.is_file_backed
        assert dax.is_file_backed


class TestSizeBuckets:
    def test_bucket_labels_match_fig18(self):
        assert vma_size_bucket(4 * KB) == "4KB"
        assert vma_size_bucket(100 * KB) == "<128KB"
        assert vma_size_bucket(300 * KB) == "<512KB"
        assert vma_size_bucket(5 * MB) == "<8MB"
        assert vma_size_bucket(2 * GB) == ">1GB"


class TestVMAManager:
    def test_mmap_creates_aligned_vma(self):
        manager = VMAManager()
        vma = manager.mmap(10_000)
        assert vma.size == 12 * KB
        assert vma.start % PAGE_SIZE_4K == 0

    def test_mmap_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            VMAManager().mmap(0)

    def test_find(self):
        manager = VMAManager()
        vma = manager.mmap(1 * MB)
        assert manager.find(vma.start) is vma
        assert manager.find(vma.end - 1) is vma
        assert manager.find(vma.end) is None

    def test_consecutive_mmaps_do_not_overlap(self):
        manager = VMAManager()
        vmas = [manager.mmap(64 * KB) for _ in range(20)]
        for a, b in zip(vmas, vmas[1:]):
            assert a.end <= b.start

    def test_fixed_address_mapping(self):
        manager = VMAManager()
        vma = manager.mmap(64 * KB, fixed_address=0x1000_0000)
        assert vma.start == 0x1000_0000

    def test_overlapping_fixed_mapping_rejected(self):
        manager = VMAManager()
        manager.mmap(64 * KB, fixed_address=0x1000_0000)
        with pytest.raises(ValueError):
            manager.mmap(64 * KB, fixed_address=0x1000_0000)

    def test_munmap(self):
        manager = VMAManager()
        vma = manager.mmap(64 * KB)
        manager.munmap(vma)
        assert manager.find(vma.start) is None
        assert len(manager) == 0

    def test_munmap_unknown_rejected(self):
        manager = VMAManager()
        foreign = VirtualMemoryArea(0x5000, 0x6000)
        with pytest.raises(ValueError):
            manager.munmap(foreign)

    def test_find_or_fault_raises_for_unmapped(self):
        manager = VMAManager()
        with pytest.raises(VMANotFoundError):
            manager.find_or_fault(0x1234)

    def test_find_or_fault_records_lookup_work(self):
        manager = VMAManager()
        vma = manager.mmap(64 * KB)
        trace = KernelRoutineTrace("fault")
        found = manager.find_or_fault(vma.start + 100, trace)
        assert found is vma
        assert "find_vma" in trace.op_names()

    def test_total_mapped_bytes(self):
        manager = VMAManager()
        manager.mmap(64 * KB)
        manager.mmap(128 * KB)
        assert manager.total_mapped_bytes == 192 * KB

    def test_size_histogram_counts_all_vmas(self):
        manager = VMAManager()
        manager.mmap(4 * KB)
        manager.mmap(4 * KB)
        manager.mmap(16 * MB)
        histogram = manager.size_histogram()
        assert histogram["4KB"] == 2
        assert histogram["<16MB"] == 1
        assert sum(histogram.values()) == 3

    def test_largest(self):
        manager = VMAManager()
        assert manager.largest() is None
        manager.mmap(64 * KB)
        big = manager.mmap(8 * MB)
        assert manager.largest() is big

    @given(st.lists(st.integers(min_value=1, max_value=4 * MB), min_size=1, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_every_mapped_byte_is_findable_property(self, sizes):
        manager = VMAManager()
        vmas = [manager.mmap(size) for size in sizes]
        for vma in vmas:
            assert manager.find(vma.start) is vma
            assert manager.find(vma.end - 1) is vma
        assert len(manager) == len(sizes)


class TestProcess:
    def test_mmap_counts_calls(self):
        process = Process(pid=1)
        process.mmap(64 * KB)
        process.mmap(64 * KB)
        assert process.stats()["mmap_calls"] == 2
        assert process.mapped_bytes == 128 * KB

    def test_munmap(self):
        process = Process(pid=2)
        vma = process.mmap(64 * KB)
        process.munmap(vma)
        assert process.mapped_bytes == 0
