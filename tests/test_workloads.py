"""Tests for the workload generators and the registry."""

import pytest

from repro.common.addresses import MB, PAGE_SIZE_4K
from repro.common.config import PageTableConfig
from repro.core.instructions import InstructionKind
from repro.mimicos.kernel import MimicOS
from repro.workloads import (
    GRAPH_KERNELS,
    LLM_PROFILES,
    LONG_RUNNING_WORKLOADS,
    SHORT_RUNNING_WORKLOADS,
    GraphWorkload,
    IntensitySweepWorkload,
    JSONWorkload,
    KernelFractionMicrobenchmark,
    LLMInferenceWorkload,
    PointerChaseWorkload,
    RandomAccessWorkload,
    SequentialWorkload,
    XSBenchWorkload,
    build_suite,
    build_workload,
    workload_names,
)
from tests.conftest import tiny_mimicos_config


@pytest.fixture
def kernel_and_process():
    kernel = MimicOS(tiny_mimicos_config(), PageTableConfig())
    return kernel, kernel.create_process("wl")


def materialise(workload, kernel, process, limit=50_000):
    workload.setup(kernel, process)
    instructions = []
    for instruction in workload.instructions(process):
        instructions.append(instruction)
        if len(instructions) >= limit:
            break
    return instructions


class TestRegistry:
    def test_all_paper_workloads_registered(self):
        names = workload_names()
        for name in LONG_RUNNING_WORKLOADS + SHORT_RUNNING_WORKLOADS:
            assert name in names, name

    def test_build_workload_unknown_name(self):
        with pytest.raises(KeyError):
            build_workload("NOPE")

    def test_build_suite(self):
        suite = build_suite(["BFS", "RND"], memory_operations=10)
        assert [w.name for w in suite] == ["BFS", "RND"]

    def test_aliases(self):
        assert build_workload("SP").name == "SSSP"
        assert build_workload("KCORE").name == "KC"

    def test_graph_kernels_and_llm_profiles_complete(self):
        assert set(GRAPH_KERNELS) == {"BC", "BFS", "CC", "GC", "KC", "PR", "SSSP", "TC"}
        assert set(LLM_PROFILES) == {"Llama", "Bagel", "Mistral"}


class TestWorkloadStreams:
    def test_addresses_stay_inside_vmas(self, kernel_and_process):
        kernel, process = kernel_and_process
        workload = RandomAccessWorkload(footprint_bytes=4 * MB, memory_operations=500)
        instructions = materialise(workload, kernel, process)
        for instruction in instructions:
            if instruction.is_memory:
                assert process.vmas.find(instruction.memory_address) is not None

    def test_graph_workload_mixes_memory_and_compute(self, kernel_and_process):
        kernel, process = kernel_and_process
        workload = GraphWorkload("PR", footprint_bytes=8 * MB, memory_operations=500)
        instructions = materialise(workload, kernel, process)
        kinds = {instruction.kind for instruction in instructions}
        assert InstructionKind.LOAD in kinds
        assert InstructionKind.ALU in kinds
        memory_count = sum(1 for i in instructions if i.is_memory)
        assert 0 < memory_count < len(instructions)

    def test_graph_workload_deterministic(self, kernel_and_process):
        kernel, process = kernel_and_process
        first = materialise(GraphWorkload("BFS", footprint_bytes=4 * MB,
                                          memory_operations=200, seed=3), kernel, process)
        kernel2 = MimicOS(tiny_mimicos_config(), PageTableConfig())
        process2 = kernel2.create_process("wl2")
        second = materialise(GraphWorkload("BFS", footprint_bytes=4 * MB,
                                           memory_operations=200, seed=3), kernel2, process2)
        assert [i.memory_address for i in first] == [i.memory_address for i in second]

    def test_bc_creates_many_small_vmas(self, kernel_and_process):
        kernel, process = kernel_and_process
        GraphWorkload("BC", footprint_bytes=8 * MB, memory_operations=10).setup(kernel, process)
        assert len(process.vmas) >= 148  # 3 data VMAs + 147 auxiliary ones

    def test_unknown_graph_kernel_rejected(self):
        with pytest.raises(ValueError):
            GraphWorkload("DIJKSTRA")

    def test_faas_workload_touches_every_page(self, kernel_and_process):
        kernel, process = kernel_and_process
        workload = JSONWorkload(scale=0.1)
        instructions = materialise(workload, kernel, process)
        touched_pages = {i.memory_address // PAGE_SIZE_4K for i in instructions if i.is_memory}
        mapped_pages = sum(vma.size // PAGE_SIZE_4K for vma in process.vmas)
        assert len(touched_pages) == mapped_pages

    def test_llm_workload_grows_kv_cache_monotonically(self, kernel_and_process):
        kernel, process = kernel_and_process
        workload = LLMInferenceWorkload("Llama", scale=0.2)
        instructions = materialise(workload, kernel, process)
        kv_vma = next(vma for vma in process.vmas if "kv-cache" in vma.name)
        kv_writes = [i.memory_address for i in instructions
                     if i.is_write and kv_vma.contains(i.memory_address or 0)]
        assert kv_writes == sorted(kv_writes)
        assert kv_writes, "the KV cache must be written"

    def test_llm_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            LLMInferenceWorkload("GPT-5")

    def test_xsbench_has_dependent_index_lookups(self, kernel_and_process):
        kernel, process = kernel_and_process
        workload = XSBenchWorkload(footprint_bytes=8 * MB, lookups=20)
        instructions = materialise(workload, kernel, process)
        assert sum(1 for i in instructions if i.is_memory) > 20

    def test_pointer_chase_addresses_are_serially_dependent(self, kernel_and_process):
        kernel, process = kernel_and_process
        workload = PointerChaseWorkload(footprint_bytes=4 * MB, memory_operations=50)
        instructions = materialise(workload, kernel, process)
        addresses = [i.memory_address for i in instructions if i.is_memory]
        assert len(set(addresses)) > 10

    def test_intensity_sweep_scales_randomness(self, kernel_and_process):
        kernel, process = kernel_and_process
        low = IntensitySweepWorkload(0.0, memory_operations=300, seed=1)
        high = IntensitySweepWorkload(1.0, memory_operations=300, seed=1)
        low_instructions = materialise(low, kernel, process)
        kernel2 = MimicOS(tiny_mimicos_config(), PageTableConfig())
        process2 = kernel2.create_process("x")
        high_instructions = materialise(high, kernel2, process2)

        def distinct_pages(instructions):
            return len({i.memory_address // PAGE_SIZE_4K
                        for i in instructions if i.is_memory})

        assert distinct_pages(high_instructions) > distinct_pages(low_instructions)
        assert high.footprint_bytes > low.footprint_bytes

    def test_intensity_bounds_validated(self):
        with pytest.raises(ValueError):
            IntensitySweepWorkload(1.5)

    def test_kernel_fraction_microbenchmark_constant_app_instructions(self, kernel_and_process):
        kernel, process = kernel_and_process
        low = KernelFractionMicrobenchmark(0.0, memory_operations=300)
        high = KernelFractionMicrobenchmark(1.0, memory_operations=300)
        low_count = len(materialise(low, kernel, process))
        kernel2 = MimicOS(tiny_mimicos_config(), PageTableConfig())
        high_count = len(materialise(high, kernel2, kernel2.create_process("y")))
        assert low_count == high_count

    def test_kernel_fraction_touches_more_fresh_pages_at_high_fraction(self, kernel_and_process):
        kernel, process = kernel_and_process
        high = KernelFractionMicrobenchmark(1.0, memory_operations=300)
        instructions = materialise(high, kernel, process)
        pages = {i.memory_address // PAGE_SIZE_4K for i in instructions if i.is_memory}
        assert len(pages) > 200

    def test_prefault_addresses_cover_vmas(self, kernel_and_process):
        kernel, process = kernel_and_process
        workload = SequentialWorkload(footprint_bytes=1 * MB, memory_operations=10)
        workload.setup(kernel, process)
        addresses = list(workload.prefault_addresses(process))
        assert len(addresses) == 256
