"""Shared fixtures: small, fast system configurations for unit tests."""

from __future__ import annotations

import pytest

from repro.common.addresses import MB
from repro.common.config import (
    MimicOSConfig,
    PageTableConfig,
    SimulationConfig,
    SystemConfig,
    scaled_system_config,
)
from repro.core.virtuoso import Virtuoso
from repro.memhier.memory_system import MemoryHierarchy
from repro.mimicos.buddy import BuddyAllocator
from repro.mimicos.kernel import MimicOS


TINY_MEMORY_BYTES = 256 * MB


def tiny_mimicos_config(**overrides) -> MimicOSConfig:
    """A MimicOS configuration small enough for sub-second tests."""
    defaults = dict(
        physical_memory_bytes=TINY_MEMORY_BYTES,
        thp_policy="linux",
        swap_size_bytes=16 * MB,
        page_cache_size_bytes=16 * MB,
        fragmentation_target=1.0,
    )
    defaults.update(overrides)
    return MimicOSConfig(**defaults)


def tiny_system_config(**overrides) -> SystemConfig:
    """A complete system configuration sized for unit/integration tests."""
    config = scaled_system_config(name="test-system",
                                  physical_memory_bytes=TINY_MEMORY_BYTES,
                                  fragmentation_target=1.0)
    if overrides:
        from dataclasses import replace
        config = replace(config, **overrides)
    return config


@pytest.fixture
def mimicos_config() -> MimicOSConfig:
    """Small MimicOS configuration."""
    return tiny_mimicos_config()


@pytest.fixture
def kernel(mimicos_config) -> MimicOS:
    """A booted MimicOS with a radix page table."""
    return MimicOS(mimicos_config, PageTableConfig(kind="radix"))


@pytest.fixture
def buddy() -> BuddyAllocator:
    """A 256 MB buddy allocator."""
    return BuddyAllocator(TINY_MEMORY_BYTES)


@pytest.fixture
def system_config() -> SystemConfig:
    """Small full-system configuration."""
    return tiny_system_config()


@pytest.fixture
def virtuoso(system_config) -> Virtuoso:
    """A fully assembled small Virtuoso instance."""
    return Virtuoso(system_config, seed=7)


@pytest.fixture
def memory(system_config) -> MemoryHierarchy:
    """A memory hierarchy built from the small system configuration."""
    return MemoryHierarchy.from_system_config(system_config)


class FlatMemory:
    """Constant-latency memory stub satisfying the walker's MemoryInterface."""

    def __init__(self, latency: int = 10):
        self.latency = latency
        self.accesses = []

    def access_address(self, address, is_write=False, access_type=None, pc=0):
        self.accesses.append((address, is_write))
        return self.latency


@pytest.fixture
def flat_memory() -> FlatMemory:
    """Constant-latency memory stub."""
    return FlatMemory()
