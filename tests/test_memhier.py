"""Tests for the cache, prefetcher, DRAM and memory-hierarchy models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig, DRAMConfig, PrefetcherConfig
from repro.memhier.cache import Cache
from repro.memhier.dram import DRAMModel
from repro.memhier.memory_system import (
    MemoryAccessType,
    MemoryHierarchy,
    MemoryRequest,
)
from repro.memhier.prefetcher import (
    IPStridePrefetcher,
    NullPrefetcher,
    StreamPrefetcher,
    build_prefetcher,
)


def small_cache(replacement="lru", size=4096, assoc=4, latency=2) -> Cache:
    return Cache(CacheConfig("test", size_bytes=size, associativity=assoc,
                             latency=latency, replacement=replacement))


class TestCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        first = cache.access(0x1000)
        second = cache.access(0x1000)
        assert not first.hit and second.hit
        assert cache.hits() == 1
        assert cache.misses() == 1

    def test_same_line_different_offsets_hit(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.access(0x1010).hit

    def test_latency_reported(self):
        cache = small_cache(latency=7)
        assert cache.access(0x0).latency == 7

    def test_lru_eviction_order(self):
        cache = small_cache(size=4 * 64, assoc=4)  # one set of 4 ways
        for index in range(4):
            cache.access(index * 64 * cache.num_sets)
        cache.access(0)  # refresh line 0
        cache.access(5 * 64 * cache.num_sets)  # evicts the LRU (line 1)
        assert cache.probe(0)
        assert not cache.probe(1 * 64 * cache.num_sets)

    def test_srrip_eviction(self):
        cache = small_cache(replacement="srrip", size=4 * 64, assoc=4)
        for index in range(8):
            cache.access(index * 64 * cache.num_sets)
        assert cache.counters.get("evictions") == 4

    def test_write_marks_dirty_and_eviction_reports_it(self):
        cache = small_cache(size=1 * 64, assoc=1)
        cache.access(0, is_write=True)
        result = cache.access(64 * cache.num_sets)
        assert result.evicted_dirty

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0x2000)
        assert cache.invalidate(0x2000)
        assert not cache.probe(0x2000)
        assert not cache.invalidate(0x2000)

    def test_flush(self):
        cache = small_cache()
        for address in range(0, 1024, 64):
            cache.access(address)
        cache.flush()
        assert not cache.probe(0)

    def test_fill_does_not_count_as_demand(self):
        cache = small_cache()
        cache.fill(0x3000)
        assert cache.accesses() == 0
        assert cache.probe(0x3000)

    def test_pollution_attribution(self):
        cache = small_cache(size=1 * 64, assoc=1)
        cache.access(0, request_type="data")
        cache.access(64 * cache.num_sets, request_type="ptw")
        assert cache.counters.get("pollution_evictions_by_ptw") == 1

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate() == pytest.approx(0.5)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_occupancy_never_exceeds_capacity_property(self, addresses):
        cache = small_cache(size=16 * 64, assoc=4)
        for address in addresses:
            cache.access(address)
        resident = sum(1 for lines in cache._sets for line in lines if line.valid)
        assert resident <= 16
        assert cache.hits() + cache.misses() == len(addresses)


class TestPrefetchers:
    def test_null_prefetcher(self):
        assert NullPrefetcher().observe(0x1000, 0x400) == []

    def test_ip_stride_detects_stride(self):
        prefetcher = IPStridePrefetcher(PrefetcherConfig("ip_stride", degree=2))
        pc = 0x400
        assert prefetcher.observe(0x1000, pc) == []
        assert prefetcher.observe(0x1040, pc) == []
        assert prefetcher.observe(0x1080, pc) == []
        candidates = prefetcher.observe(0x10C0, pc)
        assert candidates == [0x1100, 0x1140]

    def test_ip_stride_resets_on_irregular_pattern(self):
        prefetcher = IPStridePrefetcher(PrefetcherConfig("ip_stride", degree=1))
        pc = 0x400
        prefetcher.observe(0x1000, pc)
        prefetcher.observe(0x1040, pc)
        assert prefetcher.observe(0x9000, pc) == []

    def test_stream_prefetcher_trains_within_region(self):
        prefetcher = StreamPrefetcher(PrefetcherConfig("stream", degree=2))
        assert prefetcher.observe(0x2000, 0) == []
        candidates = prefetcher.observe(0x2040, 0)
        assert 0x2080 in candidates

    def test_build_prefetcher_factory(self):
        assert isinstance(build_prefetcher(None), NullPrefetcher)
        assert isinstance(build_prefetcher(PrefetcherConfig("ip_stride")), IPStridePrefetcher)
        assert isinstance(build_prefetcher(PrefetcherConfig("stream")), StreamPrefetcher)
        with pytest.raises(ValueError):
            build_prefetcher(PrefetcherConfig("magic"))


class TestDRAM:
    def make(self, policy="open") -> DRAMModel:
        return DRAMModel(DRAMConfig(capacity_bytes=1 << 30, channels=2, ranks_per_channel=1,
                                    banks_per_rank=4, page_policy=policy))

    def test_row_hit_after_first_access(self):
        dram = self.make()
        first = dram.access(0x1000)
        second = dram.access(0x1000)
        assert not first.row_hit and second.row_hit
        assert second.latency < first.latency

    def test_row_conflict_latency_is_highest(self):
        dram = self.make()
        base = 0x0
        conflicting = dram.config.row_size_bytes * dram.num_channels * dram.banks_per_channel * 8
        dram.access(base)
        result = dram.access(conflicting)
        # Same bank, different row -> conflict.
        assert result.row_conflict
        assert result.latency == dram.config.row_conflict_latency

    def test_closed_page_policy_never_hits(self):
        dram = self.make(policy="closed")
        dram.access(0x1000)
        assert not dram.access(0x1000).row_hit

    def test_conflict_attribution_by_request_type(self):
        dram = self.make()
        stride = dram.config.row_size_bytes * dram.num_channels * dram.banks_per_channel * 4
        dram.access(0x0, request_type="data")
        dram.access(stride, request_type="ptw")
        assert dram.row_conflicts(caused_by="ptw") == 1
        assert dram.translation_row_conflicts() == 1

    def test_hit_rate(self):
        dram = self.make()
        dram.access(0)
        dram.access(0)
        assert dram.row_buffer_hit_rate() == pytest.approx(0.5)

    def test_channel_interleaving(self):
        dram = self.make()
        channels = {dram.map_address(line * 64)[0] for line in range(8)}
        assert channels == {0, 1}


class TestMemoryHierarchy:
    def build(self) -> MemoryHierarchy:
        return MemoryHierarchy(
            l1_config=CacheConfig("L1", 4 * 1024, 4, 2),
            l2_config=CacheConfig("L2", 16 * 1024, 4, 8),
            l3_config=CacheConfig("L3", 64 * 1024, 8, 20),
            dram_config=DRAMConfig(capacity_bytes=1 << 30),
        )

    def test_first_access_goes_to_dram(self):
        hierarchy = self.build()
        outcome = hierarchy.access(MemoryRequest(0x12345))
        assert outcome.served_by == "DRAM"

    def test_second_access_hits_l1(self):
        hierarchy = self.build()
        hierarchy.access(MemoryRequest(0x12345))
        outcome = hierarchy.access(MemoryRequest(0x12345))
        assert outcome.served_by == "L1"
        assert outcome.latency == hierarchy.l1.latency

    def test_latency_accumulates_down_the_hierarchy(self):
        hierarchy = self.build()
        outcome = hierarchy.access(MemoryRequest(0x777000))
        expected_minimum = (hierarchy.l1.latency + hierarchy.l2.latency
                            + hierarchy.l3.latency)
        assert outcome.latency > expected_minimum

    def test_request_type_tracking(self):
        hierarchy = self.build()
        hierarchy.access(MemoryRequest(0x1000, access_type=MemoryAccessType.PTW))
        assert hierarchy.counters.get("requests_ptw") == 1

    def test_access_address_convenience(self):
        hierarchy = self.build()
        latency = hierarchy.access_address(0x4000)
        assert latency > 0

    def test_flush_caches_forces_dram_again(self):
        hierarchy = self.build()
        hierarchy.access(MemoryRequest(0x9000))
        hierarchy.flush_caches()
        assert hierarchy.access(MemoryRequest(0x9000)).served_by == "DRAM"

    def test_stats_structure(self):
        hierarchy = self.build()
        hierarchy.access(MemoryRequest(0x1))
        stats = hierarchy.stats()
        assert set(stats) == {"hierarchy", "l1", "l2", "l3", "dram"}

    def test_from_system_config(self, system_config):
        hierarchy = MemoryHierarchy.from_system_config(system_config)
        assert hierarchy.l1.config.size_bytes == system_config.l1d_cache.size_bytes
