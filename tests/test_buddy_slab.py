"""Tests for the buddy and slab physical-memory allocators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.addresses import MB, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.kernelops import KernelRoutineTrace
from repro.mimicos.buddy import ORDER_1G, ORDER_2M, BuddyAllocator, OutOfMemoryError
from repro.mimicos.slab import SlabAllocator, SlabCache


class TestBuddyAllocator:
    def test_initial_state_all_free(self, buddy):
        assert buddy.free_bytes == buddy.total_bytes
        assert buddy.used_bytes == 0
        assert buddy.usage == 0.0

    def test_allocate_order_zero(self, buddy):
        result = buddy.allocate(0)
        assert result.order == 0
        assert buddy.used_bytes == PAGE_SIZE_4K
        assert result.address % PAGE_SIZE_4K == 0

    def test_allocate_2mb_alignment(self, buddy):
        result = buddy.allocate(ORDER_2M)
        assert result.address % PAGE_SIZE_2M == 0
        assert buddy.used_bytes == PAGE_SIZE_2M

    def test_allocation_splits_larger_blocks(self, buddy):
        result = buddy.allocate(0)
        assert result.splits > 0

    def test_free_and_coalesce_restores_state(self, buddy):
        addresses = [buddy.allocate(0).address for _ in range(64)]
        for address in addresses:
            buddy.free(address)
        assert buddy.free_bytes == buddy.total_bytes
        assert buddy.free_blocks_at_least(ORDER_2M) == buddy.total_bytes // PAGE_SIZE_2M

    def test_double_free_rejected(self, buddy):
        address = buddy.allocate(0).address
        buddy.free(address)
        with pytest.raises(ValueError):
            buddy.free(address)

    def test_free_unknown_address_rejected(self, buddy):
        with pytest.raises(ValueError):
            buddy.free(0xDEADBEEF)

    def test_out_of_memory(self):
        tiny = BuddyAllocator(16 * PAGE_SIZE_4K, max_order=4)
        for _ in range(16):
            tiny.allocate(0)
        with pytest.raises(OutOfMemoryError):
            tiny.allocate(0)

    def test_allocate_bytes_rounds_up(self, buddy):
        result = buddy.allocate_bytes(5000)
        assert result.order == 1

    def test_invalid_order(self, buddy):
        with pytest.raises(ValueError):
            buddy.allocate(-1)
        with pytest.raises(ValueError):
            buddy.allocate(buddy.max_order + 1)

    def test_fragmentation_metric_decreases_with_allocations(self, buddy):
        initial = buddy.fraction_free_huge_blocks()
        assert initial == pytest.approx(1.0)
        for _ in range(16):
            buddy.allocate(ORDER_2M)
        assert buddy.fraction_free_huge_blocks() < initial

    def test_has_block(self, buddy):
        assert buddy.has_block(ORDER_2M)
        assert buddy.has_block(0)

    def test_largest_free_segments_sorted(self, buddy):
        buddy.allocate(0)
        segments = buddy.largest_free_segments(10)
        assert segments == sorted(segments, reverse=True)

    def test_contiguity_score_bounds(self, buddy):
        assert 0.0 < buddy.contiguity_score() <= 1.0

    def test_trace_records_kernel_work(self, buddy):
        trace = KernelRoutineTrace("alloc")
        buddy.allocate(0, trace)
        assert any(op.name == "buddy_alloc" for op in trace.ops)
        assert trace.total_memory_touches > 0

    def test_buddy_address_never_overlaps(self, buddy):
        seen = set()
        for _ in range(200):
            address = buddy.allocate(0).address
            assert address not in seen
            seen.add(address)

    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_alloc_free_roundtrip_property(self, orders):
        buddy = BuddyAllocator(64 * MB)
        allocated = []
        for order in orders:
            allocated.append((buddy.allocate(order).address, order))
        used = sum(PAGE_SIZE_4K << order for _, order in allocated)
        assert buddy.used_bytes == used
        for address, _ in allocated:
            buddy.free(address)
        assert buddy.free_bytes == buddy.total_bytes

    @given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_blocks_never_overlap_property(self, orders):
        buddy = BuddyAllocator(64 * MB)
        intervals = []
        for order in orders:
            result = buddy.allocate(order)
            size = PAGE_SIZE_4K << order
            intervals.append((result.address, result.address + size))
        intervals.sort()
        for (start_a, end_a), (start_b, _) in zip(intervals, intervals[1:]):
            assert end_a <= start_b


class TestSlabAllocator:
    def test_pt_frame_allocation(self, buddy):
        slab = SlabAllocator(buddy)
        frame = slab.allocate_pt_frame()
        assert frame % PAGE_SIZE_4K == 0
        assert buddy.used_bytes == PAGE_SIZE_4K

    def test_small_objects_share_a_slab(self, buddy):
        slab = SlabAllocator(buddy)
        cache = slab.cache("vma", 64)
        objects = [cache.allocate() for _ in range(10)]
        assert len(set(objects)) == 10
        assert buddy.used_bytes == PAGE_SIZE_4K  # one backing page

    def test_free_and_reuse(self, buddy):
        slab = SlabAllocator(buddy)
        cache = slab.cache("obj", 128)
        first = cache.allocate()
        cache.free(first)
        assert cache.allocate() == first

    def test_free_unknown_object_rejected(self, buddy):
        cache = SlabAllocator(buddy).cache("obj", 128)
        with pytest.raises(ValueError):
            cache.free(0x1234)

    def test_cache_size_conflict_rejected(self, buddy):
        slab = SlabAllocator(buddy)
        slab.cache("obj", 128)
        with pytest.raises(ValueError):
            slab.cache("obj", 256)

    def test_invalid_object_size(self, buddy):
        with pytest.raises(ValueError):
            SlabCache("bad", 8192, buddy)

    def test_refill_allocates_new_backing_page(self, buddy):
        slab = SlabAllocator(buddy)
        cache = slab.cache("pt_frame", PAGE_SIZE_4K)
        cache.allocate()
        cache.allocate()
        assert buddy.used_bytes == 2 * PAGE_SIZE_4K
        assert cache.counters.get("slab_refills") == 2

    def test_trace_records_refill_work(self, buddy):
        slab = SlabAllocator(buddy)
        trace = KernelRoutineTrace("fault")
        slab.allocate_pt_frame(trace)
        names = trace.op_names()
        assert "slab_alloc_pt_frame" in names
        assert "buddy_alloc" in names

    def test_allocated_object_count(self, buddy):
        cache = SlabAllocator(buddy).cache("obj", 512)
        handles = [cache.allocate() for _ in range(5)]
        assert cache.allocated_objects == 5
        cache.free(handles[0])
        assert cache.allocated_objects == 4
