"""Fault-injection matrix for the durable experiment service.

Every robustness guarantee of :mod:`repro.experiments.service` is
exercised against a deterministic :class:`FaultPlan` and asserted via
the ``simulated_sha256`` byte-identity fingerprint: a crashed, hung,
flaky, killed-and-resumed or cache-served sweep must compute *exactly*
the simulation a fault-free ``workers=1`` straight-line run computes.

Also covers the satellite hardening: ``fan_out`` pool capping and
single-item short-circuit, eager ``SweepPoint`` validation, the
sub-resolution ``host_seconds`` division guards, and corruption recovery
in both the journal (truncated line) and the object store.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.common.addresses import MB
from repro.experiments import sweep as sweep_module
from repro.experiments.faultinject import FaultAction, FaultPlan, TransientFault
from repro.experiments.service import (
    demo_grid,
    run_resilient_sweep,
    sweep_job_key,
)
from repro.experiments.store import Journal, ResultStore, content_key
from repro.experiments.sweep import (
    SweepPoint,
    fan_out,
    kips_value,
    merge_point_digests,
    run_sweep,
    validate_points,
)


def tiny_grid(count: int = 4) -> list:
    return [SweepPoint(name=f"svc-{index}", workload="RND",
                       workload_kwargs={"footprint_bytes": 1 * MB,
                                        "memory_operations": 300,
                                        "prefault": True, "seed": index})
            for index in range(count)]


@pytest.fixture(scope="module")
def straight_line():
    """The fault-free sequential baseline every faulted run must match."""
    return run_sweep(tiny_grid(), workers=1)


# --------------------------------------------------------------------- #
# Satellite: fan_out sizing
# --------------------------------------------------------------------- #
class TestFanOut:
    def test_single_item_short_circuits_inline(self, monkeypatch):
        def forbidden_pool(*_args, **_kwargs):
            raise AssertionError("a 1-item fan-out must not spin a pool")

        monkeypatch.setattr(sweep_module.multiprocessing, "Pool",
                            forbidden_pool)
        assert fan_out(len, ["abc"], workers=8) == [3]

    def test_pool_size_capped_at_item_count(self, monkeypatch):
        seen = {}
        real_pool = sweep_module.multiprocessing.Pool

        def capturing_pool(processes=None):
            seen["processes"] = processes
            return real_pool(processes=processes)

        monkeypatch.setattr(sweep_module.multiprocessing, "Pool",
                            capturing_pool)
        assert fan_out(len, ["ab", "cde"], workers=8) == [2, 3]
        assert seen["processes"] == 2


# --------------------------------------------------------------------- #
# Satellite: eager grid validation
# --------------------------------------------------------------------- #
class TestValidation:
    def test_unknown_workload_names_the_point(self):
        points = [SweepPoint(name="bad-wl", workload="NoSuchWorkload")]
        with pytest.raises(ValueError, match="bad-wl.*NoSuchWorkload"):
            validate_points(points)

    def test_unknown_scenario_for_multicore_point(self):
        points = [SweepPoint(name="bad-scenario", workload="RND", cores=2)]
        with pytest.raises(ValueError, match="bad-scenario.*scenario"):
            validate_points(points)

    def test_unknown_page_table_kind(self):
        points = [SweepPoint(name="bad-kind", workload="RND",
                             page_table_kind="quantum")]
        with pytest.raises(ValueError, match="bad-kind.*quantum"):
            validate_points(points)

    def test_unknown_engine(self):
        points = [SweepPoint(name="bad-engine", workload="RND",
                             engine="warp")]
        with pytest.raises(ValueError, match="bad-engine.*warp"):
            validate_points(points)

    def test_duplicate_names_rejected(self):
        points = [SweepPoint(name="twin", workload="RND"),
                  SweepPoint(name="twin", workload="Bagel")]
        with pytest.raises(ValueError, match="duplicate.*twin"):
            validate_points(points)

    def test_run_sweep_validates_before_spawning(self):
        with pytest.raises(ValueError, match="NoSuchWorkload"):
            run_sweep([SweepPoint(name="p", workload="NoSuchWorkload")],
                      workers=4)


# --------------------------------------------------------------------- #
# Satellite: sub-resolution host-seconds guards
# --------------------------------------------------------------------- #
class TestKipsGuards:
    def test_kips_value_zero_below_resolution(self):
        assert kips_value(1_000_000, 0.0) == 0.0
        assert kips_value(1_000_000, 1e-9) == 0.0
        assert kips_value(2_000_000, 2.0) == 1000.0

    def test_merge_guards_denormal_total(self):
        digests = [{"simulated_instructions": 1000, "kernel_instructions": 0,
                    "page_faults": 0, "host_seconds": 5e-10}]
        merged = merge_point_digests(digests)
        assert merged["aggregate_kips"] == 0.0


# --------------------------------------------------------------------- #
# Store + journal durability primitives
# --------------------------------------------------------------------- #
class TestStore:
    def test_roundtrip_and_content_addressing(self, tmp_path):
        store = ResultStore(tmp_path)
        key = content_key({"a": 1, "b": [1, 2]})
        assert content_key({"b": (1, 2), "a": 1}) == key  # order/tuple-blind
        assert store.get(key) is None
        store.put(key, {"value": 42})
        assert store.get(key)["digest"] == {"value": 42}
        assert key in store and list(store.keys()) == [key]

    def test_corrupt_object_quarantined_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = content_key("x")
        path = store.put(key, {"value": 1})
        path.write_text('{"schema": "result_store/v1", "dig')  # torn write
        assert store.get(key) is None
        assert store.corrupt_objects == 1
        store.put(key, {"value": 2})  # recompute lands cleanly
        assert store.get(key)["digest"] == {"value": 2}

    def test_journal_replay_tolerates_truncated_tail(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append({"event": "a"})
        journal.append({"event": "b"})
        journal.close()
        with open(journal.path, "a") as handle:
            handle.write('{"event": "c", "trunc')  # SIGKILL mid-append
        records, corrupt = journal.replay()
        assert [r["event"] for r in records] == ["a", "b"]
        assert corrupt == 1

    def test_sweep_job_key_hashes_config_and_seed(self):
        point = tiny_grid(1)[0]
        assert sweep_job_key(point, 0) != sweep_job_key(point, 1)
        renamed = SweepPoint(**{**point.__dict__, "name": "other"})
        assert sweep_job_key(point, 0) != sweep_job_key(renamed, 0)


# --------------------------------------------------------------------- #
# The fault-injection matrix
# --------------------------------------------------------------------- #
class TestFaultMatrix:
    def test_crash_on_point_k_recovers_bit_identical(self, tmp_path,
                                                     straight_line):
        """A worker crash (os._exit) on one point costs a retry, not the
        sweep: the final digest matches the straight-line run exactly."""
        points = tiny_grid()
        plan = FaultPlan(actions=[FaultAction("svc-2", 1, "crash")])
        digest = run_resilient_sweep(points, store_root=tmp_path, workers=2,
                                     timeout=30.0, retries=2, backoff=0.01,
                                     fault_plan=plan)
        assert digest["service"]["crashes"] == 1
        assert digest["service"]["retries"] == 1
        assert digest["failed_points"] == []
        assert digest["simulated_sha256"] == straight_line["simulated_sha256"]

    def test_hang_is_timeout_killed_then_retried(self, tmp_path,
                                                 straight_line):
        points = tiny_grid()
        plan = FaultPlan(actions=[FaultAction("svc-1", 1, "hang",
                                              hang_seconds=30.0)])
        digest = run_resilient_sweep(points, store_root=tmp_path, workers=2,
                                     timeout=0.75, retries=2, backoff=0.01,
                                     fault_plan=plan)
        assert digest["service"]["timeouts"] == 1
        assert digest["failed_points"] == []
        assert digest["simulated_sha256"] == straight_line["simulated_sha256"]

    def test_flaky_twice_then_pass_backoff_schedule(self, tmp_path,
                                                    straight_line):
        """Two transient failures retry on an exponential schedule
        (base, 2*base) and the third attempt lands the real result."""
        points = tiny_grid()
        plan = FaultPlan(actions=[FaultAction("svc-0", 1, "flaky"),
                                  FaultAction("svc-0", 2, "flaky")])
        digest = run_resilient_sweep(points, store_root=tmp_path, workers=2,
                                     timeout=30.0, retries=3, backoff=0.01,
                                     fault_plan=plan)
        assert digest["service"]["transient_failures"] == 2
        assert digest["service"]["retries"] == 2
        assert digest["job_details"]["svc-0"]["attempts"] == 3
        assert digest["job_details"]["svc-0"]["backoff_schedule"] == [0.01, 0.02]
        assert digest["simulated_sha256"] == straight_line["simulated_sha256"]

    def test_exhausted_retries_quarantine_not_poison(self, tmp_path,
                                                     straight_line):
        """A job that fails every attempt is quarantined with its
        traceback in the digest; the rest of the sweep completes, and a
        later fault-free rerun heals the hole from the cache + recompute."""
        points = tiny_grid()
        plan = FaultPlan(actions=[FaultAction("svc-3", attempt, "flaky")
                                  for attempt in (1, 2, 3, 4, 5)])
        digest = run_resilient_sweep(points, store_root=tmp_path, workers=2,
                                     timeout=30.0, retries=1, backoff=0.01,
                                     fault_plan=plan)
        assert digest["service"]["quarantined"] == 1
        assert len(digest["points"]) == len(points) - 1
        assert digest["merged"]["points"] == len(points) - 1
        [failed] = digest["failed_points"]
        assert failed["name"] == "svc-3"
        assert failed["attempts"] == 2
        assert failed["reason"] == "transient"
        assert "TransientFault" in failed["traceback"]
        # Healing rerun: the three completed points come from the cache,
        # only the quarantined one is recomputed — and identity holds.
        healed = run_resilient_sweep(points, store_root=tmp_path, workers=2)
        assert healed["service"]["cache_hits"] == len(points) - 1
        assert healed["service"]["executed"] == 1
        assert healed["simulated_sha256"] == straight_line["simulated_sha256"]

    def test_partial_run_then_full_run_reuses_cache(self, tmp_path,
                                                    straight_line):
        points = tiny_grid()
        run_resilient_sweep(points[:2], store_root=tmp_path, workers=1)
        digest = run_resilient_sweep(points, store_root=tmp_path, workers=1)
        assert digest["service"]["cache_hits"] == 2
        assert digest["service"]["cache_misses"] == 2
        assert digest["service"]["cache_hit_rate"] == 0.5
        assert digest["simulated_sha256"] == straight_line["simulated_sha256"]

    def test_corrupt_store_object_recomputed(self, tmp_path, straight_line):
        points = tiny_grid()
        first = run_resilient_sweep(points, store_root=tmp_path, workers=1)
        store = ResultStore(tmp_path)
        key = sweep_job_key(points[1], 0)
        store._object_path(key).write_text("not json at all")
        digest = run_resilient_sweep(points, store_root=tmp_path, workers=1)
        assert digest["service"]["cache_hits"] == len(points) - 1
        assert digest["service"]["executed"] == 1
        assert digest["service"]["store_corrupt_objects"] == 1
        assert digest["simulated_sha256"] == first["simulated_sha256"]
        assert digest["simulated_sha256"] == straight_line["simulated_sha256"]

    def test_seeded_plan_is_deterministic_and_distinct(self):
        names = [point.name for point in demo_grid(8)]
        plan_a = FaultPlan.seeded(names, seed=11, crashes=1, hangs=1, flaky=1)
        plan_b = FaultPlan.seeded(names, seed=11, crashes=1, hangs=1, flaky=1)
        assert plan_a.actions == plan_b.actions
        victims = {action.job for action in plan_a.actions}
        assert len(victims) == 3
        assert plan_a.counts() == {"crash": 1, "hang": 1, "flaky": 1}
        rehydrated = FaultPlan.from_json(plan_a.to_json())
        assert rehydrated.actions == plan_a.actions


# --------------------------------------------------------------------- #
# Kill-and-resume (the CI smoke, exercised through the CLI)
# --------------------------------------------------------------------- #
class TestKillResume:
    def test_sigkill_mid_sweep_resumes_bit_identical(self, tmp_path):
        """SIGKILL the service host mid-sweep, resume from the journal +
        store, and finish with a digest byte-identical to straight-line
        (the `kill-resume-smoke` CLI asserts exactly this and exits 0)."""
        src_root = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_root)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments.service",
             "kill-resume-smoke", "--store", str(tmp_path / "store"),
             "--points", "5", "--demo-ops", "4000", "--workers", "1"],
            env=env, capture_output=True, text=True, timeout=300)
        assert result.returncode == 0, (
            f"kill-resume smoke failed:\n{result.stdout}\n{result.stderr}")
        assert "identical" in result.stdout

    def test_resume_counters_surface_interrupted_jobs(self, tmp_path):
        """A journal with an attempt_started but no completion is counted
        as an interrupted job on the next run."""
        points = tiny_grid(2)
        store = ResultStore(tmp_path)
        journal = Journal(store.journal_path)
        journal.append({"event": "attempt_started",
                        "key": sweep_job_key(points[0], 0),
                        "name": points[0].name, "attempt": 1})
        journal.close()
        digest = run_resilient_sweep(points, store_root=tmp_path, workers=1)
        assert digest["service"]["resumed_interrupted"] == 1
        assert len(digest["points"]) == 2


# --------------------------------------------------------------------- #
# Satellite: fail-fast argument validation
# --------------------------------------------------------------------- #
class TestResilientSweepValidation:
    def test_empty_point_list_fails_fast(self, tmp_path):
        with pytest.raises(ValueError, match="non-empty point list"):
            run_resilient_sweep([], store_root=tmp_path)

    def test_nonpositive_workers_fail_fast(self, tmp_path):
        with pytest.raises(ValueError, match="workers must be a positive"):
            run_resilient_sweep(tiny_grid(1), store_root=tmp_path, workers=0)
        with pytest.raises(ValueError, match="got -2"):
            run_resilient_sweep(tiny_grid(1), store_root=tmp_path, workers=-2)

    def test_store_root_that_is_a_file_fails_fast(self, tmp_path):
        clobber = tmp_path / "store"
        clobber.write_text("precious data, do not mkdir over me")
        with pytest.raises(ValueError, match="existing file, not a directory"):
            run_resilient_sweep(tiny_grid(1), store_root=clobber)
        assert clobber.read_text() == "precious data, do not mkdir over me"


# --------------------------------------------------------------------- #
# Satellite: store GC, quarantine stats, duplicate-completion warning
# --------------------------------------------------------------------- #
class TestStoreGC:
    def fill(self, store: ResultStore, count: int = 4) -> list:
        keys = []
        for index in range(count):
            key = content_key({"gc": index})
            path = store.put(key, {"value": index, "pad": "x" * 512})
            # Deterministic LRU order: ascending atime by index.
            stamp = 1_000_000 + index * 100
            os.utime(path, (stamp, stamp))
            keys.append(key)
        return keys

    def test_evicts_least_recently_used_first(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = self.fill(store)
        sizes = store.stats()["stored_bytes"]
        report = store.gc(budget_bytes=sizes // 2)
        evicted = [row["key"] for row in report["evicted"]]
        # Oldest atimes go first; the newest object always survives.
        assert evicted == keys[:len(evicted)]
        assert store.get(keys[-1]) is not None
        assert report["bytes_after"] <= sizes // 2
        assert not report["over_budget"]

    def test_dry_run_unlinks_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = self.fill(store)
        report = store.gc(budget_bytes=0, dry_run=True)
        assert len(report["evicted"]) == len(keys)
        for key in keys:
            assert store.get(key) is not None

    def test_protected_keys_survive_even_over_budget(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = self.fill(store)
        report = store.gc(budget_bytes=0, protect=set(keys))
        assert report["evicted"] == []
        assert report["over_budget"]
        assert sorted(report["protected_skipped"]) == sorted(keys)

    def test_corrupt_debris_reclaimed_first(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = self.fill(store)
        bad = content_key({"gc": "corrupt"})
        path = store.put(bad, {"value": 0})
        path.write_text('{"schema": "result_store/v1", "torn')
        assert store.get(bad) is None  # quarantines it as *.corrupt
        before = store.stats()["stored_bytes"]
        report = store.gc(budget_bytes=before)  # already within budget...
        # ...so only the (budget-free) corrupt debris is reclaimed.
        assert [row["corrupt"] for row in report["evicted"]] == [True]
        for key in keys:
            assert store.get(key) is not None

    def test_stats_count_quarantined_objects_on_disk(self, tmp_path):
        store = ResultStore(tmp_path)
        key = content_key({"stats": 1})
        path = store.put(key, {"value": 1})
        path.write_text("garbage")
        assert store.get(key) is None
        # A *different* handle still sees the on-disk quarantine debris.
        fresh = ResultStore(tmp_path)
        stats = fresh.stats()
        assert stats["quarantined_objects"] == 1
        assert stats["corrupt_objects"] == 0  # this handle saw none itself


class TestJournalDuplicateWarning:
    def test_duplicate_completion_warns_on_replay(self, tmp_path):
        from repro.experiments.store import JournalWarning

        journal = Journal(tmp_path / "journal.jsonl")
        journal.append({"event": "job_completed", "key": "k1", "name": "a"})
        journal.append({"event": "job_completed", "key": "k1", "name": "a"})
        journal.append({"event": "job_completed", "key": "k2", "name": "b"})
        journal.close()
        replayer = Journal(tmp_path / "journal.jsonl")
        with pytest.warns(JournalWarning, match="k1"):
            records, corrupt = replayer.replay()
        replayer.close()
        assert corrupt == 0 and len(records) == 3

    def test_unique_completions_replay_silently(self, tmp_path):
        import warnings

        journal = Journal(tmp_path / "journal.jsonl")
        journal.append({"event": "job_completed", "key": "k1", "name": "a"})
        journal.append({"event": "job_completed", "key": "k2", "name": "b"})
        journal.close()
        replayer = Journal(tmp_path / "journal.jsonl")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            records, _ = replayer.replay()
        replayer.close()
        assert len(records) == 2


class TestJournalProgress:
    def test_in_flight_is_submitted_minus_terminal(self):
        from repro.experiments.service import journal_progress

        rollup = journal_progress([
            {"event": "job_submitted", "key": "a"},
            {"event": "attempt_started", "key": "a"},
            {"event": "job_completed", "key": "a"},
            {"event": "job_submitted", "key": "b"},
            {"event": "attempt_started", "key": "b"},   # crashed mid-run
            {"event": "job_submitted", "key": "c"},
            {"event": "job_cancelled", "key": "c"},
            {"event": "cache_hit", "key": "d"},
            {"event": "server_started"},                # no key: ignored
        ])
        assert rollup["completed"] == 1
        assert rollup["cancelled"] == 1
        assert rollup["cache_hits"] == 1
        assert rollup["in_flight"] == 1  # only "b"
