"""Tests for the radix page table, page-walk caches and the shared base class."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.addresses import PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.kernelops import KernelRoutineTrace
from repro.pagetables.base import PageTableBase
from repro.pagetables.radix import PageWalkCache, RadixPageTable


class TestPageWalkCache:
    def test_miss_then_hit(self):
        pwc = PageWalkCache("PWC", coverage_shift=21)
        assert not pwc.lookup(0x4000_0000)
        pwc.fill(0x4000_0000)
        assert pwc.lookup(0x4000_0000)

    def test_coverage_granularity(self):
        pwc = PageWalkCache("PWC", coverage_shift=21)
        pwc.fill(0x4000_0000)
        assert pwc.lookup(0x4000_0000 + PAGE_SIZE_4K)       # same 2 MB region
        assert not pwc.lookup(0x4000_0000 + PAGE_SIZE_2M)   # next region

    def test_lru_eviction_within_set(self):
        pwc = PageWalkCache("PWC", entries=4, associativity=4, coverage_shift=21)
        for index in range(5):
            pwc.fill(index * PAGE_SIZE_2M * pwc.num_sets)
        hits = sum(pwc.lookup(index * PAGE_SIZE_2M * pwc.num_sets) for index in range(5))
        assert hits == 4

    def test_invalidate(self):
        pwc = PageWalkCache("PWC", coverage_shift=21)
        pwc.fill(0x1000)
        pwc.invalidate(0x1000)
        assert not pwc.lookup(0x1000)

    def test_hit_rate(self):
        pwc = PageWalkCache("PWC")
        pwc.lookup(0)
        pwc.fill(0)
        pwc.lookup(0)
        assert pwc.hit_rate() == pytest.approx(0.5)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            PageWalkCache("PWC", entries=10, associativity=4)


class TestRadixPageTable:
    def test_insert_and_functional_lookup(self):
        table = RadixPageTable()
        table.insert(0x7F00_0000_0000, 0x10_0000, PAGE_SIZE_4K)
        assert table.lookup(0x7F00_0000_0000) == (0x10_0000, PAGE_SIZE_4K)
        assert table.lookup(0x7F00_0000_0123) == (0x10_0000, PAGE_SIZE_4K)
        assert table.translate_functional(0x7F00_0000_0123) == 0x10_0123

    def test_lookup_missing(self):
        assert RadixPageTable().lookup(0x1234_0000) is None

    def test_walk_finds_mapping_with_four_accesses(self, flat_memory):
        table = RadixPageTable(enable_pwcs=False)
        table.insert(0x5555_0000, 0x20_0000, PAGE_SIZE_4K)
        result = table.walk(0x5555_0000, flat_memory)
        assert result.found
        assert result.memory_accesses == 4
        assert result.physical_base == 0x20_0000

    def test_walk_miss_reports_fault(self, flat_memory):
        table = RadixPageTable()
        result = table.walk(0x1234_5000, flat_memory)
        assert not result.found

    def test_huge_page_walk_terminates_early(self, flat_memory):
        table = RadixPageTable(enable_pwcs=False)
        table.insert(0x4000_0000, 0x800_0000, PAGE_SIZE_2M)
        result = table.walk(0x4000_0000 + 0x1234, flat_memory)
        assert result.found
        assert result.page_size == PAGE_SIZE_2M
        assert result.memory_accesses == 3

    def test_gigabyte_page_walk(self, flat_memory):
        table = RadixPageTable(enable_pwcs=False)
        table.insert(0x40_0000_0000, 0x1_0000_0000, PAGE_SIZE_1G)
        result = table.walk(0x40_0000_0000 + 123456, flat_memory)
        assert result.found
        assert result.page_size == PAGE_SIZE_1G
        assert result.memory_accesses == 2

    def test_pwc_reduces_walk_accesses(self, flat_memory):
        table = RadixPageTable()
        table.insert(0x7F00_0000_0000, 0x30_0000, PAGE_SIZE_4K)
        first = table.walk(0x7F00_0000_0000, flat_memory)
        second = table.walk(0x7F00_0000_0000 + PAGE_SIZE_4K, flat_memory)
        # The second walk shares PGD/PUD/PMD with the first, so the PMD-level
        # PWC lets it skip to the leaf access.
        assert second.memory_accesses < first.memory_accesses
        assert second.memory_accesses == 1

    def test_remove(self, flat_memory):
        table = RadixPageTable()
        table.insert(0x6000_0000, 0x40_0000, PAGE_SIZE_4K)
        assert table.remove(0x6000_0000)
        assert table.lookup(0x6000_0000) is None
        assert not table.walk(0x6000_0000, flat_memory).found
        assert not table.remove(0x6000_0000)

    def test_pt_frame_allocation_counted(self):
        table = RadixPageTable()
        table.insert(0x7F00_0000_0000, 0x10_0000, PAGE_SIZE_4K)
        assert table.page_table_frames() == 3  # PUD, PMD, PTE nodes
        table.insert(0x7F00_0000_1000, 0x11_0000, PAGE_SIZE_4K)
        assert table.page_table_frames() == 3  # shares all interior nodes

    def test_insert_records_kernel_work(self):
        table = RadixPageTable()
        trace = KernelRoutineTrace("fault")
        table.insert(0x7F00_0000_0000, 0x10_0000, PAGE_SIZE_4K, trace)
        assert "radix_pt_update" in trace.op_names()
        assert trace.total_memory_touches >= 4

    def test_unsupported_page_size_rejected(self):
        with pytest.raises(ValueError):
            RadixPageTable().insert(0, 0, 8192)

    def test_mapped_accounting(self):
        table = RadixPageTable()
        table.insert(0x1000_0000, 0x1000, PAGE_SIZE_4K)
        table.insert(0x4000_0000, 0x200000, PAGE_SIZE_2M)
        assert table.mapped_pages() == 2
        assert table.mapped_bytes() == PAGE_SIZE_4K + PAGE_SIZE_2M

    @given(st.sets(st.integers(min_value=0, max_value=1 << 22), min_size=1, max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_insert_lookup_walk_agree_property(self, page_numbers):
        from tests.conftest import FlatMemory
        flat_memory = FlatMemory()
        table = RadixPageTable()
        mappings = {}
        for index, vpn in enumerate(sorted(page_numbers)):
            virtual = 0x7F00_0000_0000 + vpn * PAGE_SIZE_4K
            physical = 0x10_0000_0000 + index * PAGE_SIZE_4K
            table.insert(virtual, physical, PAGE_SIZE_4K)
            mappings[virtual] = physical
        for virtual, physical in mappings.items():
            assert table.lookup(virtual) == (physical, PAGE_SIZE_4K)
            walk = table.walk(virtual, flat_memory)
            assert walk.found and walk.physical_base == physical
