"""In-thread coverage of the async experiment server and its client.

Every distributed-systems guarantee of :mod:`repro.experiments.server`
is exercised against a real listening socket on an in-thread server:
content-key deduplication, backpressure with structured ``retry_after``,
queued-job cancellation, graceful drain vs forced stop, abrupt client
disconnects, heartbeat-silence lease reclaim, and the restart/resubmit
recovery loop — plus the wire protocol and the seeded network fault
plan's determinism contract.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import asdict

import pytest

from repro.common.addresses import MB
from repro.experiments import protocol
from repro.experiments.client import (
    ExperimentClient,
    RemoteService,
    ServerError,
)
from repro.experiments.faultinject import (
    FaultAction,
    FaultPlan,
    NetworkFaultAction,
    NetworkFaultPlan,
)
from repro.experiments.server import ExperimentServer, ServerThread
from repro.experiments.service import run_resilient_sweep, sweep_job_key
from repro.experiments.sweep import SweepPoint, run_sweep


def net_grid(count: int = 3, ops: int = 300) -> list:
    return [SweepPoint(name=f"net-{index}", workload="RND",
                       workload_kwargs={"footprint_bytes": 1 * MB,
                                        "memory_operations": ops,
                                        "prefault": True, "seed": index})
            for index in range(count)]


def sweep_payload(point: SweepPoint, base_seed: int = 0) -> dict:
    return {"point": asdict(point), "base_seed": base_seed}


def submit_point(client: ExperimentClient, point: SweepPoint) -> str:
    key = sweep_job_key(point, 0)
    client.submit("sweep_point", sweep_payload(point), name=point.name,
                  key=key)
    return key


# --------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------- #
class TestProtocol:
    def test_frames_are_canonical_and_roundtrip(self):
        frame = protocol.encode_frame({"verb": "ping", "id": 7})
        assert frame.endswith(b"\n") and frame.count(b"\n") == 1
        # Sorted keys: structurally equal messages are byte-equal.
        assert frame == protocol.encode_frame({"id": 7, "verb": "ping"})
        assert protocol.decode_frame(frame) == {"verb": "ping", "id": 7}

    def test_garbage_raises_protocol_error_not_teardown(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b"\x00 not json \xff")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b"[1, 2, 3]")  # JSON, but not an object

    def test_frame_ceiling_enforced_both_directions(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_frame({"blob": "x" * protocol.MAX_FRAME_BYTES})
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b"x" * (protocol.MAX_FRAME_BYTES + 1))

    def test_response_shapes(self):
        ok = protocol.ok_response(3, status="done")
        assert ok == {"id": 3, "ok": True, "status": "done"}
        err = protocol.error_response(4, protocol.ERROR_OVERLOADED,
                                      retry_after=0.5)
        assert err["ok"] is False and err["retry_after"] == 0.5


# --------------------------------------------------------------------- #
# Seeded network fault plans
# --------------------------------------------------------------------- #
class TestNetworkFaultPlan:
    def test_seeded_plan_is_deterministic(self):
        kwargs = dict(clients=["c0", "c1"], job_names=["j0", "j1", "j2"])
        one = NetworkFaultPlan.seeded(11, **kwargs)
        two = NetworkFaultPlan.seeded(11, **kwargs)
        assert one.to_json() == two.to_json()
        other = NetworkFaultPlan.seeded(12, **kwargs)
        assert one.to_json() != other.to_json()

    def test_handshake_frame_is_never_targeted(self):
        plan = NetworkFaultPlan.seeded(5, clients=["c"], job_names=["j"],
                                       drops=4, delays=4, disconnects=4,
                                       garbage=4, frame_window=4)
        assert all(action.frame >= 1 for action in plan.actions
                   if action.kind != "drop_heartbeat")

    def test_json_roundtrip_and_counts(self):
        plan = NetworkFaultPlan.seeded(9, clients=["a", "b"],
                                       job_names=["x", "y"],
                                       heartbeat_drops=2)
        back = NetworkFaultPlan.from_json(plan.to_json())
        assert back.actions == plan.actions and back.seed == 9
        assert plan.counts() == {"drop": 1, "delay": 1, "disconnect": 1,
                                 "garbage": 1, "drop_heartbeat": 2}

    def test_heartbeat_drop_keyed_on_job_and_attempt(self):
        plan = NetworkFaultPlan(actions=[NetworkFaultAction(
            "drop_heartbeat", job="victim", attempt=1, stall_seconds=9.0)])
        assert plan.heartbeat_drop("victim", 1).stall_seconds == 9.0
        assert plan.heartbeat_drop("victim", 2) is None
        assert plan.heartbeat_drop("other", 1) is None

    def test_send_actions_match_side_client_and_frame(self):
        action = NetworkFaultAction("drop", side="client", client="c0",
                                    frame=3)
        plan = NetworkFaultPlan(actions=[action])
        assert plan.send_actions("client", "c0", 3) == [action]
        assert plan.send_actions("client", "c1", 3) == []
        assert plan.send_actions("server", "c0", 3) == []
        assert plan.send_actions("client", "c0", 2) == []


# --------------------------------------------------------------------- #
# Server behaviour (in-thread, real sockets)
# --------------------------------------------------------------------- #
class TestServerBasics:
    def test_constructor_rejects_unworkable_timings(self, tmp_path):
        with pytest.raises(ValueError, match="queue_limit"):
            ExperimentServer(tmp_path, queue_limit=0)
        with pytest.raises(ValueError, match="lease_seconds"):
            ExperimentServer(tmp_path, lease_seconds=0.1,
                             heartbeat_interval=0.2)

    def test_submit_execute_fetch_and_dedup_cache(self, tmp_path):
        point = net_grid(1)[0]
        server = ExperimentServer(tmp_path, workers=1, fsync=False)
        with ServerThread(server) as harness:
            with ExperimentClient(harness.address, client_id="c0") as c0:
                key = submit_point(c0, point)
                response = c0.result(key, wait_seconds=30.0)
                assert response["status"] == "done"
                assert response["cached"] is False
            with ExperimentClient(harness.address, client_id="c1") as c1:
                second = c1.submit("sweep_point", sweep_payload(point),
                                   key=key)
                assert second["status"] == "cached"
                assert c1.result(key)["digest"] == response["digest"]
        assert server.counters["executed"] == 1

    def test_concurrent_duplicate_submit_runs_once(self, tmp_path):
        point = net_grid(1)[0]
        # Attempt 1 hangs until the 1s job timeout, attempt 2 lands: a
        # wide deterministic window in which the job is busy.
        plan = FaultPlan(actions=[FaultAction(job=point.name, attempt=1,
                                              kind="hang")])
        server = ExperimentServer(tmp_path, workers=1, job_timeout=1.0,
                                  backoff=0.05, fault_plan=plan, fsync=False)
        with ServerThread(server) as harness:
            with ExperimentClient(harness.address, client_id="c0") as c0, \
                    ExperimentClient(harness.address, client_id="c1") as c1:
                key = submit_point(c0, point)
                duplicate = c1.submit("sweep_point", sweep_payload(point),
                                      key=key)
                assert duplicate["status"] == "duplicate"
                first = c0.result(key, wait_seconds=30.0)
                second = c1.result(key, wait_seconds=30.0)
                assert first["digest"] == second["digest"]
        assert server.counters["executed"] == 1
        assert server.counters["duplicates"] == 1
        assert server.counters["timeouts"] == 1  # the hung attempt

    def test_backpressure_rejects_with_retry_after(self, tmp_path):
        points = net_grid(2)
        plan = FaultPlan(actions=[FaultAction(job=points[0].name, attempt=1,
                                              kind="hang")])
        server = ExperimentServer(tmp_path, workers=1, queue_limit=1,
                                  job_timeout=1.0, backoff=0.05,
                                  fault_plan=plan, fsync=False)
        with ServerThread(server) as harness:
            with ExperimentClient(harness.address, client_id="c0") as c0:
                submit_point(c0, points[0])
                # Raw request: bypass the client's polite retry loop.
                rejection = c0.request(
                    "submit", kind="sweep_point",
                    payload=sweep_payload(points[1]),
                    key=sweep_job_key(points[1], 0))
                assert rejection["ok"] is False
                assert rejection["error"] == protocol.ERROR_OVERLOADED
                assert rejection["retry_after"] > 0
                assert server.counters["rejected_backpressure"] == 1

    def test_cancel_queued_job_but_not_leased(self, tmp_path):
        points = net_grid(2)
        plan = FaultPlan(actions=[FaultAction(job=points[0].name, attempt=1,
                                              kind="hang")])
        server = ExperimentServer(tmp_path, workers=1, queue_limit=4,
                                  job_timeout=1.0, backoff=0.05,
                                  fault_plan=plan, fsync=False)
        with ServerThread(server) as harness:
            with ExperimentClient(harness.address) as client:
                busy = submit_point(client, points[0])
                queued = submit_point(client, points[1])
                deadline = time.monotonic() + 10.0
                while (client.status(busy)["job"]["status"]
                       != protocol.JOB_LEASED):
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                assert client.cancel(queued)["status"] == "cancelled"
                assert (client.result(queued)["status"] == "cancelled")
                # The leased job is left to land (its result is cacheable).
                assert client.cancel(busy)["cancelled"] is False
                assert client.result(busy,
                                     wait_seconds=30.0)["status"] == "done"
        assert server.counters["cancelled"] == 1

    def test_draining_server_rejects_new_admissions(self, tmp_path):
        points = net_grid(2)
        plan = FaultPlan(actions=[FaultAction(job=points[0].name, attempt=1,
                                              kind="hang")])
        server = ExperimentServer(tmp_path, workers=1, job_timeout=2.0,
                                  backoff=0.05, fault_plan=plan, fsync=False)
        harness = ServerThread(server).start()
        try:
            with ExperimentClient(harness.address) as client:
                submit_point(client, points[0])  # keeps the drain busy
                server._loop.call_soon_threadsafe(server.begin_drain)
                deadline = time.monotonic() + 5.0
                while not server.draining:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                with pytest.raises(ServerError) as excinfo:
                    client.submit("sweep_point", sweep_payload(points[1]),
                                  key=sweep_job_key(points[1], 0))
                assert excinfo.value.error == protocol.ERROR_DRAINING
                assert server.counters["rejected_draining"] == 1
        finally:
            harness.stop(timeout=30.0)

    def test_drain_verb_finishes_leased_work_then_acks(self, tmp_path):
        point = net_grid(1)[0]
        server = ExperimentServer(tmp_path, workers=1, fsync=False)
        harness = ServerThread(server).start()
        with ExperimentClient(harness.address) as client:
            key = submit_point(client, point)
            ack = client.drain(hold_seconds=60.0)
            assert ack["drained"] is True and ack["executed"] == 1
        harness.stop()
        # A clean drain terminates the journal segment: nothing in flight.
        from repro.experiments.store import active_journal_keys
        assert active_journal_keys(server.store.journal_path) == set()
        assert key in server.store

    def test_garbage_frames_and_unknown_verbs_are_survivable(self, tmp_path):
        server = ExperimentServer(tmp_path, workers=1, fsync=False)
        with ServerThread(server) as harness:
            host, port = harness.address.split(":")
            with socket.create_connection((host, int(port)), timeout=10) as s:
                reader = s.makefile("rb")
                s.sendall(b"\x00 utter garbage, not json\n")
                s.sendall(protocol.encode_frame({"id": 1, "verb": "nope"}))
                garbage_reply = protocol.decode_frame(reader.readline())
                assert garbage_reply["error"] == protocol.ERROR_PROTOCOL
                response = protocol.decode_frame(reader.readline())
                assert response["error"] == protocol.ERROR_UNKNOWN_VERB
                s.sendall(protocol.encode_frame({"id": 2, "verb": "ping"}))
                assert protocol.decode_frame(reader.readline())["pong"]
        assert server.counters["garbage_frames"] == 1

    def test_hello_rejects_version_skew(self, tmp_path):
        server = ExperimentServer(tmp_path, workers=1, fsync=False)
        with ServerThread(server) as harness:
            with ExperimentClient(harness.address) as client:
                response = client.request("hello",
                                          version="experiment-server/v0")
                assert response["ok"] is False
                assert response["error"] == protocol.ERROR_BAD_REQUEST
                assert protocol.PROTOCOL_VERSION in str(
                    response.get("detail", response))

    def test_abrupt_client_disconnect_does_not_lose_the_job(self, tmp_path):
        point = net_grid(1)[0]
        server = ExperimentServer(tmp_path, workers=1, fsync=False)
        with ServerThread(server) as harness:
            c0 = ExperimentClient(harness.address, client_id="ghost")
            key = submit_point(c0, point)
            c0.close()  # vanish without waiting
            with ExperimentClient(harness.address, client_id="heir") as c1:
                response = c1.result(key, wait_seconds=30.0)
                assert response["status"] == "done"
        assert server.counters["executed"] == 1
        assert server.counters["disconnects"] >= 1


class TestLeaseReclaim:
    def test_silent_owner_is_reclaimed_and_retried(self, tmp_path):
        point = net_grid(1)[0]
        net_plan = NetworkFaultPlan(actions=[NetworkFaultAction(
            "drop_heartbeat", job=point.name, attempt=1,
            stall_seconds=30.0)])
        server = ExperimentServer(tmp_path, workers=1, lease_seconds=0.5,
                                  heartbeat_interval=0.1, backoff=0.05,
                                  net_fault_plan=net_plan, fsync=False)
        with ServerThread(server) as harness:
            with ExperimentClient(harness.address) as client:
                key = submit_point(client, point)
                response = client.result(key, wait_seconds=30.0)
        assert response["status"] == "done"
        assert response["attempts"] == 2
        assert response["reclaims"] == 1
        assert server.counters["lease_reclaims"] == 1
        records = [json.loads(line) for line in
                   server.store.journal_path.read_text().splitlines()]
        assert any(r.get("event") == "lease_reclaimed" for r in records)


class TestRestartRecovery:
    def test_forced_stop_then_restart_serves_from_store(self, tmp_path):
        point = net_grid(1)[0]
        first = ExperimentServer(tmp_path, workers=1, fsync=False)
        with ServerThread(first) as harness:
            with ExperimentClient(harness.address) as client:
                key = submit_point(client, point)
                digest = client.result(key, wait_seconds=30.0)["digest"]
            # Context exit is a *forced* stop: the segment stays open,
            # exactly like a SIGKILL.
        second = ExperimentServer(tmp_path, workers=1, fsync=False)
        with ServerThread(second) as harness:
            with ExperimentClient(harness.address) as client:
                # The fresh server has never seen the key in memory...
                resubmit = client.submit("sweep_point",
                                         sweep_payload(point), key=key)
                # ...but the store has: served as a cache hit, not re-run.
                assert resubmit["status"] == "cached"
                assert client.result(key)["digest"] == digest
        assert second.counters["executed"] == 0
        assert second.counters["cache_hits"] == 1

    def test_unknown_key_is_the_resubmit_signal(self, tmp_path):
        server = ExperimentServer(tmp_path, workers=1, fsync=False)
        with ServerThread(server) as harness:
            with ExperimentClient(harness.address) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.result("no-such-key")
                assert excinfo.value.error == protocol.ERROR_UNKNOWN_KEY


class TestRemoteSweep:
    def test_server_sweep_matches_straight_line_run(self, tmp_path):
        points = net_grid(3)
        baseline = run_sweep(points, workers=1)
        server = ExperimentServer(tmp_path / "store", workers=1, fsync=False)
        with ServerThread(server) as harness:
            digest = run_resilient_sweep(points,
                                         store_root=tmp_path / "client",
                                         server=harness.address)
            again = run_resilient_sweep(points,
                                        store_root=tmp_path / "client2",
                                        server=harness.address)
        assert digest["simulated_sha256"] == baseline["simulated_sha256"]
        assert again["simulated_sha256"] == baseline["simulated_sha256"]
        assert digest["service"]["mode"] == "remote"
        assert digest["service"]["executed"] == 3
        # The second sweep is served entirely from the server's memory.
        assert again["service"]["cache_hits"] == 3
        assert again["service"]["executed"] == 0

    def test_remote_gc_protects_active_segment(self, tmp_path):
        points = net_grid(2)
        server = ExperimentServer(tmp_path, workers=1, fsync=False)
        with ServerThread(server) as harness:
            with ExperimentClient(harness.address) as client:
                keys = [submit_point(client, point) for point in points]
                for key in keys:
                    client.result(key, wait_seconds=30.0)
                # Budget 0 would evict everything, but the live segment
                # references both keys: nothing may be dropped.
                report = client.gc(0)
                assert report["evicted"] == []
                assert sorted(report["protected_skipped"]) == sorted(keys)
