"""Tests for virtualised execution: guest MimicOS on a hypervisor MimicOS."""

import pytest

from repro.common.addresses import MB, PAGE_SIZE_4K
from repro.common.config import PageTableConfig
from repro.mimicos.hypervisor import VirtualMachine
from repro.mimicos.kernel import MimicOS
from tests.conftest import FlatMemory, tiny_mimicos_config


@pytest.fixture
def host():
    return MimicOS(tiny_mimicos_config(), PageTableConfig())


@pytest.fixture
def vm(host):
    return VirtualMachine(host, guest_memory_bytes=128 * MB, name="vm0")


class TestVirtualMachine:
    def test_guest_ram_backed_by_host_vma(self, host, vm):
        assert vm.guest_ram_vma.size == 128 * MB
        assert vm.host_process.pid in host.processes

    def test_guest_fault_allocates_guest_and_host_frames(self, vm):
        process = vm.create_guest_process("guest-app")
        vma = vm.guest_mmap(process, 8 * MB)
        result = vm.handle_guest_page_fault(process.pid, vma.start)
        assert not result.segfault
        assert process.page_table.lookup(vma.start) is not None
        # The guest-physical frame must be backed by a host translation.
        host_virtual = vm.guest_physical_to_host_virtual(result.guest.physical_base)
        assert vm.host_process.page_table.lookup(host_virtual) is not None
        assert vm.counters.get("hypervisor_backing_faults") >= 1

    def test_second_fault_on_backed_frame_skips_hypervisor(self, vm):
        process = vm.create_guest_process()
        vma = vm.guest_mmap(process, 8 * MB)
        first = vm.handle_guest_page_fault(process.pid, vma.start)
        backing_faults = vm.counters.get("hypervisor_backing_faults")
        # A fault on a different guest page of the same (already backed)
        # guest-physical huge frame requires no new hypervisor work.
        second_address = vma.start + first.guest.page_size // 2
        if process.page_table.lookup(second_address) is None:
            vm.handle_guest_page_fault(process.pid, second_address)
        assert vm.counters.get("hypervisor_backing_faults") >= backing_faults

    def test_guest_segfault_propagates(self, vm):
        process = vm.create_guest_process()
        result = vm.handle_guest_page_fault(process.pid, 0xDEAD_0000)
        assert result.segfault
        assert result.host is None

    def test_nested_fault_combines_both_kernels_work(self, vm):
        process = vm.create_guest_process()
        vma = vm.guest_mmap(process, 8 * MB)
        result = vm.handle_guest_page_fault(process.pid, vma.start)
        assert result.guest.trace.total_work_units > 0
        assert result.host is not None
        assert result.host.trace.total_work_units > 0
        assert result.total_disk_latency_cycles >= 0

    def test_nested_translation_unit_resolves_guest_virtual(self, vm):
        process = vm.create_guest_process()
        vma = vm.guest_mmap(process, 8 * MB)
        vm.handle_guest_page_fault(process.pid, vma.start)
        unit = vm.nested_translation_unit(process)
        walk = unit.walk(vma.start, FlatMemory())
        assert walk.found
        assert walk.memory_accesses > 0

    def test_nested_unit_for_is_memoised_per_process_and_core(self, vm):
        process = vm.create_guest_process()
        unit_a = vm.nested_unit_for(process, core_index=0)
        unit_b = vm.nested_unit_for(process, core_index=1)
        assert unit_a is not unit_b                      # per-core hardware
        assert vm.nested_unit_for(process, core_index=0) is unit_a

    def test_backing_fault_targets_the_faulting_offset(self, vm):
        """A 2 MB guest frame backed at 4 KB granularity must be backed under
        the faulting address, not just the frame base."""
        process = vm.create_guest_process()
        vma = vm.guest_mmap(process, 8 * MB)
        address = vma.start + 0x5000
        result = vm.handle_guest_page_fault(process.pid, address)
        assert not result.segfault
        mapping = process.page_table.lookup(address)
        guest_physical = mapping[0] + address % mapping[1]
        host_virtual = vm.guest_physical_to_host_virtual(guest_physical)
        assert vm.host_process.page_table.lookup(host_virtual) is not None

    def test_ept_violation_skips_the_guest_kernel(self, vm):
        """Guest translation intact + backing missing = EPT violation: only
        the hypervisor's fault runs, the guest trace carries no work."""
        process = vm.create_guest_process()
        vma = vm.guest_mmap(process, 8 * MB)
        vm.handle_guest_page_fault(process.pid, vma.start)
        guest_faults = vm.guest.counters.get("page_fault_requests")

        # Remove the backing under the mapped guest page.
        mapping = process.page_table.lookup(vma.start)
        host_virtual = vm.guest_physical_to_host_virtual(mapping[0])
        host_table = vm.host_process.page_table
        host_mapping = host_table.lookup(host_virtual)
        from repro.common.addresses import align_down
        host_table.remove(align_down(host_virtual, host_mapping[1]))

        result = vm.handle_guest_page_fault(process.pid, vma.start)
        assert not result.segfault
        assert result.host is not None
        assert result.guest.trace.total_work_units == 0   # no guest kernel work
        assert vm.counters.get("ept_violations") == 1
        assert vm.guest.counters.get("page_fault_requests") == guest_faults
        assert host_table.lookup(host_virtual) is not None  # re-backed

    def test_host_shootdown_of_guest_ram_flushes_nested_units(self, vm):
        process = vm.create_guest_process()
        vma = vm.guest_mmap(process, 8 * MB)
        vm.handle_guest_page_fault(process.pid, vma.start)
        unit = vm.nested_unit_for(process)
        from tests.conftest import FlatMemory
        unit.walk(vma.start, FlatMemory())
        assert len(unit.nested_tlb) > 0

        fired = []
        vm.register_nested_invalidation_listener(fired.append)
        # A shootdown for an unrelated host process must be ignored.
        vm.host.tlb_shootdown(vm.host_process.pid + 999, vm.guest_ram_vma.start)
        assert not fired and len(unit.nested_tlb) > 0
        # A shootdown inside the guest-RAM VMA flushes and notifies.
        vm.host.tlb_shootdown(vm.host_process.pid, vm.guest_ram_vma.start)
        assert fired == [vm.guest_ram_vma.start]
        assert len(unit.nested_tlb) == 0
        assert vm.counters.get("nested_shootdowns") == 1

    def test_from_virtualization_config(self, host):
        from repro.common.config import PageTableConfig, VirtualizationConfig
        from repro.mimicos.hypervisor import VirtualMachine

        config = VirtualizationConfig(enabled=True, guest_memory_bytes=128 * MB,
                                      guest_page_table=PageTableConfig(kind="ech"),
                                      guest_thp_policy="never",
                                      nested_tlb_entries=32)
        vm = VirtualMachine.from_virtualization_config(host, config, name="cfg-vm")
        assert vm.guest.config.physical_memory_bytes == 128 * MB
        assert vm.guest.config.thp_policy == "never"
        assert vm.guest.page_table_config.kind == "ech"
        assert vm.nested_tlb_entries == 32

    def test_two_vms_share_the_host(self, host):
        first = VirtualMachine(host, guest_memory_bytes=128 * MB, name="vm1")
        second = VirtualMachine(host, guest_memory_bytes=128 * MB, name="vm2")
        process_a = first.create_guest_process()
        process_b = second.create_guest_process()
        vma_a = first.guest_mmap(process_a, 4 * MB)
        vma_b = second.guest_mmap(process_b, 4 * MB)
        result_a = first.handle_guest_page_fault(process_a.pid, vma_a.start)
        result_b = second.handle_guest_page_fault(process_b.pid, vma_b.start)
        assert not result_a.segfault and not result_b.segfault
        assert len(host.processes) >= 2
