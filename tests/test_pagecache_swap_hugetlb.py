"""Tests for the page cache, swap subsystem, hugetlbfs pool and SSD model."""

import pytest

from repro.common.addresses import MB, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.config import SSDConfig
from repro.common.kernelops import KernelRoutineTrace
from repro.mimicos.buddy import BuddyAllocator
from repro.mimicos.hugetlbfs import HugeTLBFS
from repro.mimicos.page_cache import PageCache
from repro.mimicos.swap import SwapFullError, SwapSubsystem
from repro.storage.ssd import SSDModel


class TestPageCache:
    def test_miss_then_hit(self):
        cache = PageCache(1 * MB)
        assert not cache.lookup(1, 0)
        cache.insert(1, 0)
        assert cache.lookup(1, 0)

    def test_capacity_eviction(self):
        cache = PageCache(4 * PAGE_SIZE_4K)
        for index in range(8):
            cache.insert(1, index)
        assert cache.cached_pages == 4
        assert not cache.lookup(1, 0)
        assert cache.lookup(1, 7)

    def test_populate_file(self):
        cache = PageCache(8 * MB)
        inserted = cache.populate_file(file_id=3, size_bytes=1 * MB)
        assert inserted == 256
        assert cache.lookup(3, 0)
        assert cache.lookup(3, 255)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PageCache(0)

    def test_trace_records_lookup_work(self):
        cache = PageCache(1 * MB)
        trace = KernelRoutineTrace("fault")
        cache.lookup(1, 2, trace)
        assert "page_cache_lookup" in trace.op_names()


class TestSwapSubsystem:
    def test_swap_out_and_in_roundtrip(self):
        swap = SwapSubsystem(16 * MB)
        swap.swap_out(pid=1, vpn=100)
        assert swap.is_swapped(1, 100)
        swap.swap_in(pid=1, vpn=100)
        assert not swap.is_swapped(1, 100)

    def test_swap_full(self):
        swap = SwapSubsystem(2 * PAGE_SIZE_4K)
        swap.swap_out(1, 1)
        swap.swap_out(1, 2)
        with pytest.raises(SwapFullError):
            swap.swap_out(1, 3)

    def test_swap_in_unknown_page_raises(self):
        swap = SwapSubsystem(1 * MB)
        with pytest.raises(KeyError):
            swap.swap_in(1, 55)

    def test_slot_reuse(self):
        swap = SwapSubsystem(2 * PAGE_SIZE_4K)
        swap.swap_out(1, 1)
        swap.swap_in(1, 1)
        swap.swap_out(1, 2)
        swap.swap_out(1, 3)
        assert swap.used_slots == 2

    def test_ssd_latency_accumulates(self):
        ssd = SSDModel(SSDConfig())
        swap = SwapSubsystem(16 * MB, ssd=ssd)
        latency = swap.swap_out(1, 1)
        assert latency > 0
        assert swap.swap_cycles == latency

    def test_swap_cache_lookup(self):
        swap = SwapSubsystem(16 * MB)
        trace = KernelRoutineTrace("fault")
        assert not swap.lookup_swap_cache(1, 9, trace)
        swap.swap_out(1, 9)
        assert swap.lookup_swap_cache(1, 9, trace)
        assert swap.counters.get("swap_cache_lookups") == 2


class TestHugeTLBFS:
    def test_reserve_and_allocate(self):
        buddy = BuddyAllocator(64 * MB)
        pool = HugeTLBFS(buddy, reserved_bytes=8 * MB)
        assert pool.free_pages == 4
        page = pool.allocate()
        assert page is not None and page % PAGE_SIZE_2M == 0
        assert pool.free_pages == 3

    def test_empty_pool_returns_none(self):
        buddy = BuddyAllocator(64 * MB)
        pool = HugeTLBFS(buddy)
        assert pool.allocate() is None

    def test_free_returns_page_to_pool(self):
        buddy = BuddyAllocator(64 * MB)
        pool = HugeTLBFS(buddy, reserved_bytes=2 * MB)
        page = pool.allocate()
        pool.free(page)
        assert pool.free_pages == 1

    def test_reserve_bounded_by_memory(self):
        buddy = BuddyAllocator(8 * MB)
        pool = HugeTLBFS(buddy)
        reserved = pool.reserve(100)
        assert reserved == 4


class TestSSDModel:
    def test_read_write_latency_difference(self):
        ssd = SSDModel(SSDConfig(read_latency_us=60, write_latency_us=15))
        read = ssd.read(0)
        write = ssd.write(1)
        assert read.latency_cycles > write.latency_cycles

    def test_queueing_delay_builds_up(self):
        ssd = SSDModel(SSDConfig(channels=1))
        first = ssd.read(0, now_cycles=0)
        second = ssd.read(0, now_cycles=0)
        assert second.queue_delay_cycles > 0
        assert second.latency_cycles > first.latency_cycles

    def test_channel_striping(self):
        ssd = SSDModel(SSDConfig(channels=4))
        channels = {ssd.read(block).channel for block in range(4)}
        assert channels == {0, 1, 2, 3}

    def test_stats(self):
        ssd = SSDModel(SSDConfig())
        ssd.read(0)
        ssd.write(0)
        stats = ssd.stats()
        assert stats["reads"] == 1 and stats["writes"] == 1
