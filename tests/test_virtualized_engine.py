"""End-to-end tests for virtualized execution as a first-class engine mode.

Four families:

* construction and coupling — the virtualized system wires a guest MimicOS
  over the hypervisor, routes application faults through the guest and
  guest-RAM backing faults through the hypervisor, and injects *both*
  kernels' instruction streams into the faulting core;
* engine invariance — virtualized runs are bit-identical between the batch
  and legacy engines, on one core and on the multi-core orchestrator;
* hypervisor-remap staleness regression — after the hypervisor swaps out a
  frame backing guest RAM, the next guest access must fault and re-walk
  (host swap-in) identically on both engines instead of translating through
  the stale nested-TLB / TLB / VPN-cache entries.  This test fails if the
  two-level shootdown wiring (``MMU.invalidate_nested_translations`` /
  ``NestedTranslationUnit.invalidate``) is removed;
* 2-D accounting — the guest and host walk dimensions are attributed
  separately (``_NestedWalkAdapter`` no longer reports the combined 2-D
  latency as backend time).
"""

from dataclasses import replace

import pytest

from repro.common.addresses import MB, PAGE_SIZE_4K, align_down, page_number
from repro.common.config import VirtualizationConfig
from repro.core.multicore import MultiCoreVirtuoso
from repro.core.virtuoso import Virtuoso
from repro.mmu.mmu import MMU
from repro.validation.parity import diff_stats, flatten_stats
from repro.workloads.multiproc import GuestMixWorkload, virtualized_guests
from tests.conftest import tiny_system_config


def virtualized_config(engine: str = "batch", **virt_overrides):
    defaults = dict(enabled=True, guest_memory_bytes=128 * MB,
                    nested_tlb_entries=256)
    defaults.update(virt_overrides)
    config = tiny_system_config()
    config = config.with_virtualization(VirtualizationConfig(**defaults))
    return config.with_simulation(replace(config.simulation, engine=engine))


class TestVirtualizedConstruction:
    def test_two_kernels_and_nested_unit_wired(self):
        system = Virtuoso(virtualized_config(), seed=7)
        assert system.vm is not None
        assert system.kernel is system.vm.guest
        assert system.hypervisor is system.vm.host
        process = system.create_process("guest-app")
        assert process.pid in system.vm.guest.processes
        assert system.mmu.nested_unit is not None
        assert system.mmu.extensions.nested_translation

    def test_virtualization_requires_imitation_mode(self):
        config = virtualized_config()
        config = config.with_simulation(replace(config.simulation,
                                                os_mode="emulation"))
        with pytest.raises(ValueError, match="imitation"):
            Virtuoso(config, seed=7)

    def test_both_kernel_streams_injected_into_core(self):
        system = Virtuoso(virtualized_config(), seed=7)
        report = system.run(GuestMixWorkload(footprint_bytes=1 * MB,
                                             hot_operations=200, seed=3))
        coupling = system.coupling.counters.as_dict()
        assert coupling.get("page_faults", 0) > 0
        assert coupling.get("hypervisor_faults", 0) > 0
        # The injected streams executed on the core (guest + hypervisor).
        assert report.kernel_instructions > 0
        assert system.vm.counters.get("hypervisor_backing_faults") > 0
        assert report.details["virtualization"]["vm"]["guest_page_faults"] > 0

    def test_report_details_carry_hypervisor_section(self):
        system = Virtuoso(virtualized_config(), seed=7)
        report = system.run(GuestMixWorkload(footprint_bytes=1 * MB,
                                             hot_operations=100, seed=3))
        virt = report.details["virtualization"]
        assert "vm" in virt and "hypervisor" in virt
        assert "nested" in report.details["mmu"]


class TestVirtualizedEngineInvariance:
    def run_engine(self, engine: str):
        system = Virtuoso(virtualized_config(engine), seed=7)
        report = system.run(GuestMixWorkload(footprint_bytes=2 * MB,
                                             hot_operations=600, seed=3))
        return system, report

    def test_single_core_bit_identical(self):
        _, legacy = self.run_engine("legacy")
        batch_system, batch = self.run_engine("batch")
        assert batch_system.mmu.fast_hits > 0  # the fast path really engaged
        diffs = diff_stats(flatten_stats(legacy), flatten_stats(batch))
        assert not diffs, f"virtualized engine divergence: {diffs[:3]}"

    def test_multicore_bit_identical(self):
        def run(engine):
            system = MultiCoreVirtuoso(virtualized_config(engine), num_cores=2,
                                       seed=7)
            result = system.run(virtualized_guests(count=2,
                                                   footprint_bytes=1 * MB,
                                                   hot_operations=300, seed=3))
            return result.merged

        legacy = run("legacy")
        batch = run("batch")
        diffs = diff_stats(flatten_stats(legacy), flatten_stats(batch))
        assert not diffs, f"virtualized multicore divergence: {diffs[:3]}"


def _hypervisor_swap_out_backing(system: Virtuoso, process, address: int) -> int:
    """Do exactly what host kswapd reclaim does to the frame backing
    ``address``: swap out every 4 KB slot, unmap it in the host page table
    and broadcast the host TLB shootdown (which is what triggers the nested
    invalidation).  Returns the number of 4 KB pages swapped."""
    vm, host = system.vm, system.hypervisor
    mapping = process.page_table.lookup(address)
    assert mapping is not None
    guest_physical = mapping[0] + (address - align_down(address, mapping[1]))
    host_virtual = vm.guest_physical_to_host_virtual(guest_physical)
    host_table = vm.host_process.page_table
    host_mapping = host_table.lookup(host_virtual)
    assert host_mapping is not None
    base = align_down(host_virtual, host_mapping[1])
    pages = host_mapping[1] // PAGE_SIZE_4K
    for index in range(pages):
        host.swap.swap_out(vm.host_process.pid, page_number(base) + index)
    host_table.remove(base)
    host.tlb_shootdown(vm.host_process.pid, base)
    return pages


class TestHypervisorRemapStalenessRegression:
    """A host remap must invalidate combined translations on both engines."""

    def run_engine(self, engine: str):
        system = Virtuoso(virtualized_config(engine), seed=7)
        process = system.create_process("guest-app")
        vma = system.kernel.mmap(process, 1 * MB)
        system.activate_process(process)
        address = vma.start + 0x1000

        access = (system.mmu.access_data_fast if engine == "batch"
                  else system.mmu.access_data)
        assert access(address).translation.page_fault  # fault both levels in
        access(address)
        access(address)
        if engine == "batch":
            assert system.mmu.fast_hits > 0

        swapped = _hypervisor_swap_out_backing(system, process, address)
        assert swapped > 0

        outcome = access(address)
        return system, outcome

    def test_next_access_refaults_identically_on_both_engines(self):
        legacy_system, legacy_outcome = self.run_engine("legacy")
        batch_system, batch_outcome = self.run_engine("batch")

        # The guest translation is intact, so the re-fault is an EPT
        # violation resolved purely by the hypervisor: a host swap-in.
        for system, outcome in ((legacy_system, legacy_outcome),
                                (batch_system, batch_outcome)):
            assert outcome.translation.page_fault, (
                "access after hypervisor remap translated through a stale "
                "combined mapping instead of re-faulting")
            assert system.vm.counters.get("ept_violations") == 1
            assert system.hypervisor.swap.counters.get("swap_ins") >= 1
            assert system.mmu.counters.get("nested_shootdowns") == 1

        # And the whole sequence is engine-invariant, statistic by statistic.
        assert legacy_system.mmu.counters.as_dict() == \
            batch_system.mmu.counters.as_dict()
        assert legacy_system.tlbs.stats() == batch_system.tlbs.stats()
        assert legacy_system.mmu.nested_unit.stats() == \
            batch_system.mmu.nested_unit.stats()
        assert legacy_system.coupling.counters.as_dict() == \
            batch_system.coupling.counters.as_dict()

    def test_stale_translation_survives_if_wiring_removed(self, monkeypatch):
        """Documents the failure mode: without the nested shootdown the next
        access silently translates through the stale combined mapping (this
        is exactly what the regression test above would catch)."""
        monkeypatch.setattr(MMU, "invalidate_nested_translations",
                            lambda self: None)
        system, outcome = self.run_engine("batch")
        assert not outcome.translation.page_fault
        assert system.hypervisor.swap.counters.get("swap_ins") == 0


class TestTwoDimensionalAccounting:
    """Satellite: guest vs host walk latency is attributed, not conflated."""

    def test_guest_and_host_dimensions_sum_to_ptw_total(self):
        system = Virtuoso(virtualized_config(), seed=7)
        system.run(GuestMixWorkload(footprint_bytes=1 * MB,
                                    hot_operations=300, seed=3))
        mmu = system.mmu
        nested_stats = mmu.nested_unit.stats()
        hits = nested_stats.get("nested_tlb_hits", 0)
        hit_latency = mmu.nested_unit.nested_tlb.latency
        guest_total = mmu.guest_ptw_latency_stats.total
        host_total = mmu.host_ptw_latency_stats.total
        assert guest_total > 0 and host_total > 0
        # Every walk's latency is exactly its guest share + host share,
        # except nested-TLB hits which walk neither dimension.
        assert mmu.ptw_latency_stats.total == pytest.approx(
            guest_total + host_total + hits * hit_latency)

    def test_adapter_reports_split_not_combined_latency(self):
        from repro.mmu.mmu import _NestedWalkAdapter
        from repro.mmu.nested import NestedWalkResult

        nested = NestedWalkResult(found=True, latency=100, memory_accesses=8,
                                  host_physical_base=0x1000,
                                  guest_latency=30, host_latency=70)
        adapter = _NestedWalkAdapter(nested)
        assert adapter.frontend_latency == 30
        assert adapter.backend_latency == 70
        # The old bug: backend_latency == nested.latency (the combined 2-D
        # cost counted wholesale as host/backend time).
        assert adapter.backend_latency != nested.latency
