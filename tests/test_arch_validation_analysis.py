"""Tests for simulator integrations, the cost model, validation and reporting."""

import pytest

from repro.analysis.reporting import FigureSeries, format_figure, format_table, normalise_series
from repro.arch.cost import SimulationCostModel
from repro.arch.frontends import build_frontend
from repro.arch.integrations import GEM5_FS, INTEGRATIONS, get_integration, integration_names
from repro.common.addresses import MB
from repro.core.instructions import Instruction, InstructionKind
from repro.core.report import SimulationReport
from repro.validation.reference import ValidationResult, run_validation
from repro.workloads import JSONWorkload, RandomAccessWorkload
from tests.conftest import tiny_system_config


class TestIntegrations:
    def test_table3_loc_values(self):
        sniper = get_integration("sniper")
        assert (sniper.loc.frontend, sniper.loc.core_model, sniper.loc.mmu_model,
                sniper.loc.files) == (46, 35, 180, 9)
        champsim = get_integration("champsim")
        assert champsim.loc.total == 56 + 45 + 22

    def test_all_five_integrations_present(self):
        assert set(integration_names()) == {"champsim", "sniper", "ramulator", "gem5-se",
                                            "mqsim"}

    def test_gem5_fs_lookup(self):
        assert get_integration("gem5-fs") is GEM5_FS

    def test_unknown_integration(self):
        with pytest.raises(KeyError):
            get_integration("simics")

    def test_frontend_styles(self):
        instructions = [Instruction(InstructionKind.ALU),
                        Instruction(InstructionKind.LOAD, memory_address=0x10)]
        assert len(list(build_frontend("trace").deliver(instructions))) == 2
        assert len(list(build_frontend("execution").deliver(instructions))) == 2
        assert len(list(build_frontend("memory_only").deliver(instructions))) == 1
        with pytest.raises(ValueError):
            build_frontend("quantum")


def report_with(app_instructions, kernel_instructions):
    return SimulationReport(workload="w", config_name="c", os_mode="imitation",
                            instructions=app_instructions,
                            kernel_instructions=kernel_instructions)


class TestCostModel:
    def test_mimicos_adds_time_proportional_to_kernel_instructions(self):
        model = SimulationCostModel(get_integration("sniper"))
        baseline = model.estimate(report_with(100_000, 20_000), with_mimicos=False)
        with_mimicos = model.estimate(report_with(100_000, 20_000), with_mimicos=True)
        assert with_mimicos.host_time_units > baseline.host_time_units
        slowdown = with_mimicos.slowdown_over(baseline)
        assert 0.0 < slowdown < 1.0

    def test_online_instrumentation_doubles_memory(self):
        model = SimulationCostModel(get_integration("sniper"))
        baseline = model.estimate(report_with(1000, 100), with_mimicos=False)
        with_mimicos = model.estimate(report_with(1000, 100), with_mimicos=True)
        assert with_mimicos.memory_overhead_over(baseline) == pytest.approx(2.1, rel=0.05)

    def test_offline_instrumentation_is_cheap(self):
        model = SimulationCostModel(get_integration("ramulator"))
        baseline = model.estimate(report_with(1000, 100), with_mimicos=False)
        with_mimicos = model.estimate(report_with(1000, 100), with_mimicos=True)
        assert with_mimicos.memory_overhead_over(baseline) < 1.1

    def test_full_system_slower_than_mimicos(self):
        model = SimulationCostModel(get_integration("gem5-se"))
        report = report_with(100_000, 15_000)
        mimicos = model.estimate(report)
        full_system = model.estimate_full_system(report)
        assert full_system.host_time_units > mimicos.host_time_units
        assert full_system.host_memory_gb > get_integration("gem5-se").baseline_memory_gb


class TestSimulationReport:
    def test_derived_metrics(self):
        report = report_with(10_000, 2_000)
        report.l2_tlb_misses = 50
        report.translation_stall_cycles = 300.0
        report.fault_stall_cycles = 100.0
        report.cycles = 1000.0
        assert report.l2_tlb_mpki == pytest.approx(5.0)
        assert report.kernel_instruction_fraction == pytest.approx(2000 / 12000)
        assert report.translation_fraction_of_cycles == pytest.approx(0.3)
        assert report.allocation_fraction_of_cycles == pytest.approx(0.1)
        assert report.cycles_to_microseconds(2900.0) == pytest.approx(1.0)


class TestValidationHarness:
    def test_validation_metrics_in_range(self):
        config = tiny_system_config()
        run = run_validation(config,
                             lambda: JSONWorkload(scale=0.15),
                             workload_name="JSON", seed=5)
        result = ValidationResult.from_run(run)
        for value in (result.ipc_accuracy_virtuoso, result.ipc_accuracy_baseline,
                      result.tlb_mpki_accuracy, result.ptw_latency_accuracy):
            assert 0.0 <= value <= 1.0
        assert -1.0 <= result.fault_latency_cosine <= 1.0
        assert run.reference.os_mode == "reference"
        assert run.virtuoso.os_mode == "imitation"
        assert run.baseline.os_mode == "emulation"

    def test_virtuoso_tracks_reference_fault_latency_better_than_baseline(self):
        config = tiny_system_config()
        run = run_validation(config, lambda: JSONWorkload(scale=0.15), "JSON", seed=5)
        virtuoso_error = abs(run.virtuoso.fault_latency.mean
                             - run.reference.fault_latency.mean)
        baseline_error = abs(run.baseline.fault_latency.mean
                             - run.reference.fault_latency.mean)
        # The imitation-based model must approximate the reference's mean
        # fault latency at least as well as the fixed-latency baseline does.
        assert virtuoso_error <= baseline_error


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["alpha", 1.0], ["b", 22.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in text and "22.5" in text

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_figure_series_and_formatting(self):
        series = FigureSeries("ech")
        series.add("BC", 0.25)
        series.add("BFS", 0.5)
        assert series.values() == [0.25, 0.5]
        text = format_figure("Fig X", [series])
        assert "BC" in text and "ech" in text

    def test_normalise_series(self):
        series = FigureSeries("raw")
        series.add("a", 2.0)
        normalised = normalise_series(series, 2.0)
        assert normalised.values() == [1.0]
        with pytest.raises(ValueError):
            normalise_series(series, 0.0)
