"""Fast-path invariance tests: the batch engine and the VPN translation
cache must change *host* throughput only — never a simulated statistic.

Six families:

* batch streams — every array-native ``instruction_batches`` override must
  emit the exact (kind, pc, address) sequence of its ``instructions``;
* vectorisation — the numpy-backed generators must emit the exact sequence
  of the pure-python fallback (RNG draws included);
* engine/cache invariance — legacy vs batch engine and VPN-cache on vs off
  must produce bit-identical reports (cycles, IPC, walks, TLB counters,
  faults, memory-system counters), including the kernel path
  (``kernel_cycles``, ``kernel_instructions``, coupling/channel counters)
  on fault-heavy workloads;
* kernel batches — ``InstrumentationTool.expand_batch`` and its
  ``expand`` compatibility view must describe the same instruction stream;
* invalidation — ``activate_process``, TLB flushes, core migration and
  page-table unmaps must invalidate the VPN cache so no stale fast hit can
  occur;
* multi-core — a one-core one-task ``MultiCoreVirtuoso`` run must be
  bit-identical to ``Virtuoso.run``; an interleaved single-core
  multi-process run must be bit-identical between the batch engine and the
  legacy (per-object) sequential equivalent, fault-heavy full-system runs
  included; N-core runs must be deterministic across repeats and genuinely
  share the L2/LLC/DRAM while keeping L1/TLB state private.
"""

from dataclasses import replace

import pytest

import repro.workloads.base as workloads_base
from repro.common.addresses import MB, PAGE_SIZE_4K
from repro.common.config import CacheConfig, DRAMConfig, TLBConfig
from repro.common.kernelops import KernelRoutineTrace
from repro.core.channels import InstructionStreamChannel
from repro.core.cpu import CoreModel
from repro.core.instructions import KIND_TO_OP, OP_MAGIC, InstructionKind
from repro.core.instrumentation import InstrumentationTool
from repro.core.multicore import MultiCoreVirtuoso
from repro.core.virtuoso import Virtuoso
from repro.memhier.memory_system import MemoryHierarchy
from repro.mimicos.kernel import MimicOS
from repro.mmu.extensions import MMUExtensions
from repro.mmu.mmu import MMU, MemoryOperationResult, TranslationResult
from repro.mmu.tlb import TLBHierarchy
from repro.pagetables.radix import RadixPageTable
from repro.common.config import PageTableConfig
from repro.workloads import (
    GUPSWorkload,
    GuestMixWorkload,
    IntensitySweepWorkload,
    KernelFractionMicrobenchmark,
    LLMInferenceWorkload,
    PointerChaseWorkload,
    SequentialWorkload,
    StridedWorkload,
)
from repro.workloads.base import numpy_available, set_vectorization
from tests.conftest import tiny_mimicos_config, tiny_system_config


def _guest_mix():
    """The virtualized-guest generator: arena layout + interleaved cold
    regions + mixed re-touches, all numpy-assembled when available."""
    return GuestMixWorkload(footprint_bytes=2 * MB, vma_bytes=256 << 10,
                            interleave_regions=2, mix_per_cold=2,
                            hot_operations=400, seed=7)

REPORT_FIELDS = [
    "instructions", "kernel_instructions", "cycles", "ipc",
    "page_walks", "l2_tlb_misses", "page_faults", "major_faults",
    "total_translation_latency", "total_ptw_latency", "average_ptw_latency",
    "total_fault_latency", "dram_accesses", "dram_row_conflicts",
    "llc_misses", "translation_stall_cycles", "fault_stall_cycles",
    "data_stall_cycles", "swapped_pages",
]


def run_system(workload_factory, engine="batch", extensions=None, seed=7,
               os_mode="imitation"):
    config = tiny_system_config()
    config = config.with_simulation(replace(config.simulation, engine=engine,
                                            os_mode=os_mode))
    system = Virtuoso(config, seed=seed, mmu_extensions=extensions)
    report = system.run(workload_factory())
    return system, report


def assert_reports_identical(first, second):
    for field in REPORT_FIELDS:
        assert getattr(first, field) == getattr(second, field), field
    assert first.details["mmu"]["counters"] == second.details["mmu"]["counters"]
    assert first.details["mmu"]["tlbs"] == second.details["mmu"]["tlbs"]
    assert first.details["memory"] == second.details["memory"]
    assert first.details["core"] == second.details["core"]
    assert first.details["coupling"] == second.details["coupling"]


class TestBatchStreamsMatchInstructionStreams:
    """Array-native batch generators must replay instructions() exactly."""

    WORKLOADS = [
        lambda: GUPSWorkload(footprint_bytes=4 * MB, memory_operations=600, seed=3),
        lambda: SequentialWorkload(footprint_bytes=4 * MB, memory_operations=600, seed=4),
        lambda: PointerChaseWorkload(footprint_bytes=4 * MB, memory_operations=400, seed=5),
        lambda: IntensitySweepWorkload(0.6, memory_operations=400, prefault=False, seed=6),
        lambda: KernelFractionMicrobenchmark(0.5, memory_operations=400, seed=8),
        lambda: LLMInferenceWorkload("Bagel", scale=0.1, seed=9),
        _guest_mix,
    ]

    @pytest.mark.parametrize("factory", WORKLOADS)
    def test_sequences_identical(self, factory):
        kernel = MimicOS(tiny_mimicos_config(), PageTableConfig(kind="radix"))
        process = kernel.create_process("batchcheck")
        workload = factory()
        workload.setup(kernel, process)

        expected = [(i.kind, i.pc, i.memory_address)
                    for i in workload.instructions(process)]
        got = []
        for batch in workload.instruction_batches(process, batch_size=257):
            got.extend((i.kind, i.pc, i.memory_address)
                       for i in batch.iter_instructions())
        assert got == expected


class TestVectorizedGenerationMatchesFallback:
    """numpy-backed array construction must replay the pure-python path."""

    WORKLOADS = [
        lambda: GUPSWorkload(footprint_bytes=4 * MB, memory_operations=600, seed=3),
        lambda: SequentialWorkload(footprint_bytes=4 * MB, memory_operations=600, seed=4),
        lambda: StridedWorkload(footprint_bytes=4 * MB, memory_operations=300, seed=12),
        lambda: PointerChaseWorkload(footprint_bytes=4 * MB, memory_operations=400, seed=5),
        lambda: IntensitySweepWorkload(0.6, memory_operations=400, prefault=False, seed=6),
        lambda: KernelFractionMicrobenchmark(0.5, memory_operations=400, seed=8),
        lambda: LLMInferenceWorkload("Bagel", scale=0.1, seed=9),
        _guest_mix,
    ]

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    @pytest.mark.parametrize("factory", WORKLOADS)
    def test_vectorized_sequences_identical(self, factory):
        kernel = MimicOS(tiny_mimicos_config(), PageTableConfig(kind="radix"))
        process = kernel.create_process("veccheck")
        workload = factory()
        workload.setup(kernel, process)

        def sequence(vectorize):
            set_vectorization(vectorize)
            try:
                out = []
                for batch in workload.instruction_batches(process, batch_size=257):
                    out.extend(zip(batch.kinds, batch.pcs, batch.addresses))
                return out
            finally:
                set_vectorization(True)

        assert sequence(True) == sequence(False)

    def test_set_vectorization_reports_effective_state(self):
        original = workloads_base.vectorization_enabled()
        try:
            assert set_vectorization(False) is False
            assert set_vectorization(True) is numpy_available()
        finally:
            set_vectorization(original)


class TestKernelBatchExpansion:
    """expand_batch and its expand() view must describe one stream."""

    def make_trace(self):
        trace = KernelRoutineTrace("do_page_fault")
        entry = trace.new_op("fault_entry", work_units=6)
        entry.touch(0xFFFF_8000_0000_1000, is_write=False)
        alloc = trace.new_op("buddy_alloc", work_units=24)
        alloc.touch(0xFFFF_8000_0000_2000, is_write=True)
        alloc.touch(0xFFFF_8000_0000_2040, is_write=False)
        zero = trace.new_op("zero_page", work_units=4096)
        zero.touch(0xFFFF_8000_0000_3000, is_write=True)
        trace.new_op("fault_return", work_units=2)
        return trace

    def test_expand_view_matches_batch(self):
        tool = InstrumentationTool()
        trace = self.make_trace()
        batch = tool.expand_batch(trace)
        stream = tool.expand(self.make_trace())
        assert len(batch) == len(stream)
        from_batch = [(i.kind, i.pc, i.memory_address, i.repeat, i.is_kernel)
                      for i in batch.iter_instructions()]
        from_stream = [(i.kind, i.pc, i.memory_address, i.repeat, i.is_kernel)
                       for i in stream]
        assert from_batch == from_stream
        assert all(is_kernel for *_, is_kernel in from_batch)
        assert any(repeat >= 4096 for *_, repeat, _ in from_batch)

    def test_expansion_counters_exact_on_both_paths(self):
        batch_tool = InstrumentationTool()
        stream_tool = InstrumentationTool()
        batch = batch_tool.expand_batch(self.make_trace())
        stream = stream_tool.expand(self.make_trace())
        assert batch_tool.stats() == stream_tool.stats()
        assert batch_tool.stats()["instructions_generated"] == len(batch) == len(stream)
        assert batch_tool.stats()["routines_instrumented"] == 1

    def test_channel_batch_terminator_and_counts(self):
        channel = InstructionStreamChannel()
        tool = InstrumentationTool()
        batch = tool.expand_batch(self.make_trace())
        length = len(batch)
        channel.push_batch(batch)
        delivered = channel.pop()
        assert delivered.kinds[-1] == OP_MAGIC
        assert len(delivered) == length + 1
        assert channel.total_instructions == length
        assert channel.pop() is None


class TestEngineInvariance:
    def test_batch_engine_matches_legacy_engine(self):
        factory = lambda: GUPSWorkload(footprint_bytes=4 * MB,
                                       memory_operations=1200, seed=5)
        _, legacy = run_system(factory, engine="legacy")
        system, batch = run_system(factory, engine="batch")
        assert_reports_identical(legacy, batch)
        assert system.mmu.fast_hits > 0

    @pytest.mark.parametrize("os_mode", ["imitation", "full_system"])
    def test_kernel_batch_matches_kernel_stream_on_fault_heavy(self, os_mode):
        """The array-backed kernel path must be bit-identical to the
        per-object path where it matters most: fault-dominated runs."""
        for factory in (
            lambda: LLMInferenceWorkload("Bagel", scale=0.1, seed=9),
            lambda: KernelFractionMicrobenchmark(0.8, memory_operations=1500, seed=8),
        ):
            _, legacy = run_system(factory, engine="legacy", os_mode=os_mode)
            _, batch = run_system(factory, engine="batch", os_mode=os_mode)
            assert legacy.kernel_instructions > 0
            assert batch.kernel_instructions == legacy.kernel_instructions
            assert batch.details["core"]["breakdown"]["kernel"] == \
                legacy.details["core"]["breakdown"]["kernel"]
            assert batch.details["core"]["counters"] == legacy.details["core"]["counters"]
            assert_reports_identical(legacy, batch)

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_vectorization_on_off_invariance(self):
        """Vectorised generation must not change a single simulated stat."""
        factory = lambda: LLMInferenceWorkload("Bagel", scale=0.1, seed=9)
        try:
            set_vectorization(True)
            _, on = run_system(factory)
            set_vectorization(False)
            _, off = run_system(factory)
        finally:
            set_vectorization(True)
        assert_reports_identical(on, off)

    def test_vpn_cache_on_off_invariance(self):
        for factory in (
            lambda: SequentialWorkload(footprint_bytes=4 * MB,
                                       memory_operations=2000, prefault=True, seed=2),
            lambda: GUPSWorkload(footprint_bytes=4 * MB, memory_operations=1200, seed=5),
        ):
            on_system, on_report = run_system(factory, extensions=MMUExtensions())
            off_system, off_report = run_system(
                factory, extensions=MMUExtensions(vpn_translation_cache=False))
            assert_reports_identical(on_report, off_report)
            assert on_system.mmu.fast_hits > 0
            assert off_system.mmu.fast_hits == 0

    def test_max_instructions_exact_with_batches(self):
        factory = lambda: SequentialWorkload(footprint_bytes=4 * MB,
                                             memory_operations=5000, prefault=True)
        config = tiny_system_config()
        system = Virtuoso(config, seed=7)
        report = system.run(factory(), max_instructions=777)
        assert report.instructions == 777


class TestVPNCacheInvalidation:
    def make_mmu(self):
        memory = MemoryHierarchy(
            l1_config=CacheConfig("L1", 4 * 1024, 4, 2),
            l2_config=CacheConfig("L2", 16 * 1024, 4, 8),
            l3_config=CacheConfig("L3", 64 * 1024, 8, 20),
            dram_config=DRAMConfig(capacity_bytes=1 << 30),
        )
        tlbs = TLBHierarchy(
            l1i=TLBConfig("L1I", 16, 4, 1),
            l1d_4k=TLBConfig("L1D4K", 16, 4, 1),
            l1d_2m=TLBConfig("L1D2M", 8, 4, 1, page_sizes=(2 << 20,)),
            l2=TLBConfig("L2", 64, 8, 8, page_sizes=(PAGE_SIZE_4K, 2 << 20)),
        )
        mmu = MMU(tlbs, memory)
        table = RadixPageTable()
        mmu.set_context(pid=1, page_table=table)
        return mmu, table

    def warm(self, mmu, address):
        """Walk + fill, then an L1 hit that records the VPN cache entry."""
        mmu.access_data_fast(address)          # miss -> walk -> fill
        mmu.access_data_fast(address)          # L1 hit -> recorded
        hits_before = mmu.fast_hits
        mmu.access_data_fast(address)          # fast hit
        assert mmu.fast_hits == hits_before + 1
        assert mmu.fast_path_stats()["entries"] > 0

    def test_tlb_flush_invalidates(self):
        mmu, table = self.make_mmu()
        table.insert(0x1000, 0xA000, PAGE_SIZE_4K)
        self.warm(mmu, 0x1000)
        mmu.tlbs.flush()
        hits = mmu.fast_hits
        result = mmu.access_data_fast(0x1040)
        assert mmu.fast_hits == hits            # took the slow path
        assert result.translation.walked        # TLBs were empty again
        assert result.translation.physical_address == 0xA040

    def test_page_table_unmap_invalidates(self):
        mmu, table = self.make_mmu()
        table.insert(0x1000, 0xA000, PAGE_SIZE_4K)
        self.warm(mmu, 0x1000)
        table.remove(0x1000)
        hits = mmu.fast_hits
        mmu.access_data_fast(0x1000)
        assert mmu.fast_hits == hits            # fast path declined to answer
        # Any page-table mutation (insert included) must also invalidate.
        self.warm(mmu, 0x1000)                  # re-warm via the (stale) TLB entry
        table.insert(0x9000, 0xB000, PAGE_SIZE_4K)
        hits = mmu.fast_hits
        mmu.access_data_fast(0x1000)
        assert mmu.fast_hits == hits

    def test_set_context_and_activate_process_invalidate(self):
        mmu, table = self.make_mmu()
        table.insert(0x1000, 0xA000, PAGE_SIZE_4K)
        self.warm(mmu, 0x1000)
        other = RadixPageTable()
        mmu.set_context(pid=2, page_table=other, flush_tlbs=True)
        assert mmu.fast_path_stats()["entries"] == 0

        config = tiny_system_config()
        system = Virtuoso(config, seed=7)
        first = system.create_process("a")
        workload = SequentialWorkload(footprint_bytes=1 * MB,
                                      memory_operations=500, prefault=True)
        system.run(workload, process=first)
        assert system.mmu.fast_hits > 0
        second = system.create_process("b")
        system.activate_process(second)
        assert system.mmu.fast_path_stats()["entries"] == 0


class TestTranslationPenaltyAccounting:
    def test_negative_translation_penalty_raises(self):
        """Accounting bugs (latency < fault latency + 1) must surface loudly."""
        config = tiny_system_config()
        system = Virtuoso(config, seed=7)
        core = system.core

        bogus_translation = TranslationResult(virtual_address=0x1000, latency=3,
                                              fault_latency=10, page_fault=True)
        bogus = MemoryOperationResult(translation=bogus_translation, data_latency=0,
                                      served_by="L1", total_latency=3)
        core.mmu.access_data = lambda *args, **kwargs: bogus

        from repro.core.instructions import Instruction, InstructionKind
        with pytest.raises(AssertionError, match="negative translation component"):
            core.execute(Instruction(kind=InstructionKind.LOAD, memory_address=0x1000))

    def test_zero_latency_translation_is_not_an_error(self):
        """A zero-latency frontend (nothing to overlap) must not trip the assert."""
        config = tiny_system_config()
        system = Virtuoso(config, seed=7)
        core = system.core
        free_translation = TranslationResult(virtual_address=0x1000, latency=0)
        free = MemoryOperationResult(translation=free_translation, data_latency=0,
                                     served_by="L1", total_latency=0)
        core.mmu.access_data = lambda *args, **kwargs: free

        from repro.core.instructions import Instruction, InstructionKind
        before = core.cycles
        core.execute(Instruction(kind=InstructionKind.LOAD, memory_address=0x1000))
        assert core.cycles == before + config.core.base_cpi
        assert core.breakdown.translation_cycles == 0.0


def multicore_config(engine="batch", batch_size=1024, os_mode="imitation"):
    config = tiny_system_config()
    return config.with_simulation(replace(config.simulation, engine=engine,
                                          batch_size=batch_size, os_mode=os_mode))


def two_process_workloads():
    return [
        GUPSWorkload(footprint_bytes=4 * MB, memory_operations=2500, seed=5),
        SequentialWorkload(footprint_bytes=4 * MB, memory_operations=2500, seed=6),
    ]


def fault_heavy_workloads():
    return [
        LLMInferenceWorkload("Bagel", scale=0.1, seed=9),
        KernelFractionMicrobenchmark(0.8, memory_operations=1200, seed=8),
    ]


def _strip_host_diagnostics(core_details):
    """Drop the VPN-cache diagnostics (host-side, engine-dependent by
    design) so only simulated statistics are compared."""
    stripped = []
    for entry in core_details:
        entry = dict(entry)
        entry["mmu"] = {key: value for key, value in entry["mmu"].items()
                        if key != "fast_path"}
        stripped.append(entry)
    return stripped


def assert_merged_reports_identical(first, second):
    for field in REPORT_FIELDS:
        assert getattr(first, field) == getattr(second, field), field
    assert _strip_host_diagnostics(first.details["cores"]) == \
        _strip_host_diagnostics(second.details["cores"])
    assert first.details["shared_memory"] == second.details["shared_memory"]
    assert first.details["coupling"] == second.details["coupling"]
    assert first.details["kernel"] == second.details["kernel"]


class TestMultiCoreInvariance:
    """Multi-core batching must never move a simulated statistic."""

    def test_single_core_single_task_matches_virtuoso(self):
        """num_cores=1 with one task is exactly a Virtuoso run."""
        factory = lambda: GUPSWorkload(footprint_bytes=4 * MB,
                                       memory_operations=1200, seed=5)
        virtuoso = Virtuoso(multicore_config(), seed=7)
        single = virtuoso.run(factory())
        system = MultiCoreVirtuoso(multicore_config(), num_cores=1, seed=7)
        result = system.run([factory()])
        assert_reports_identical(single, result.core_reports[0])

    @pytest.mark.parametrize("os_mode", ["imitation", "full_system"])
    def test_interleaved_batch_matches_legacy_equivalent(self, os_mode):
        """The always-on invariant: a single-core multi-process run
        interleaved in chunks must produce bit-identical statistics on the
        batch engine and on the legacy (per-object) sequential equivalent,
        fault-heavy full-system runs included."""
        for factory in (two_process_workloads, fault_heavy_workloads):
            batch = MultiCoreVirtuoso(multicore_config("batch", os_mode=os_mode),
                                      num_cores=1, seed=7).run(factory())
            legacy = MultiCoreVirtuoso(multicore_config("legacy", os_mode=os_mode),
                                       num_cores=1, seed=7).run(factory())
            assert_merged_reports_identical(batch.merged, legacy.merged)
            assert batch.merged.instructions > 0

    def test_two_core_batch_matches_legacy(self):
        """Engine invariance holds with cores genuinely sharing L2/LLC/DRAM."""
        batch = MultiCoreVirtuoso(multicore_config("batch"),
                                  num_cores=2, seed=7).run(two_process_workloads())
        legacy = MultiCoreVirtuoso(multicore_config("legacy"),
                                   num_cores=2, seed=7).run(two_process_workloads())
        assert_merged_reports_identical(batch.merged, legacy.merged)

    @pytest.mark.parametrize("migrate_every", [None, 2])
    def test_multicore_runs_deterministic(self, migrate_every):
        """Repeated N-core runs (with and without the migration policy)
        must be bit-identical."""
        def run_once():
            system = MultiCoreVirtuoso(multicore_config(batch_size=512),
                                       num_cores=2, seed=7)
            return system.run(two_process_workloads(),
                              migrate_every=migrate_every)
        first, second = run_once(), run_once()
        assert_merged_reports_identical(first.merged, second.merged)
        for a, b in zip(first.core_reports, second.core_reports):
            for field in REPORT_FIELDS:
                assert getattr(a, field) == getattr(b, field), field

    def test_shared_levels_are_shared_and_l1_private(self):
        system = MultiCoreVirtuoso(multicore_config(), num_cores=2, seed=7)
        first, second = system.cores
        assert first.memory.l2 is second.memory.l2
        assert first.memory.l3 is second.memory.l3
        assert first.memory.dram is second.memory.dram
        assert first.memory.l1 is not second.memory.l1
        assert first.tlbs is not second.tlbs
        assert first.mmu is not second.mmu
        result = system.run(two_process_workloads())
        # Both cores executed and issued traffic through their own L1s.
        for report in result.core_reports:
            assert report.instructions > 0
        assert first.memory.l1.stats()["accesses_data"] > 0
        assert second.memory.l1.stats()["accesses_data"] > 0

    def test_contention_inflates_shared_misses(self):
        """Co-running two cache-hostile processes on shared LLC/DRAM must
        cost more than running one alone (the contention the multi-core
        model exists to expose)."""
        solo = MultiCoreVirtuoso(multicore_config(), num_cores=1, seed=7)
        solo_result = solo.run([GUPSWorkload(footprint_bytes=4 * MB,
                                             memory_operations=2500,
                                             prefault=True, seed=5)])
        duo = MultiCoreVirtuoso(multicore_config(), num_cores=2, seed=7)
        duo_result = duo.run([
            GUPSWorkload(footprint_bytes=4 * MB, memory_operations=2500,
                         prefault=True, seed=5),
            GUPSWorkload(footprint_bytes=4 * MB, memory_operations=2500,
                         prefault=True, seed=106),
        ])
        assert duo_result.merged.llc_misses > solo_result.merged.llc_misses
        assert duo_result.merged.dram_accesses > solo_result.merged.dram_accesses

    def test_sweep_deterministic_across_worker_counts(self):
        """Host parallelism must never change a simulated statistic: the
        same tiny grid run inline (workers=1) and on a 2-worker pool must
        produce identical simulated digests."""
        from repro.experiments.sweep import SweepPoint, run_sweep, simulated_digest
        points = [
            SweepPoint(name=f"det-{index}", workload="RND",
                       workload_kwargs={"footprint_bytes": 1 * MB,
                                        "memory_operations": 300,
                                        "prefault": True, "seed": index})
            for index in range(3)
        ]
        inline = run_sweep(points, workers=1)
        pooled = run_sweep(points, workers=2)
        assert simulated_digest(inline["points"]) == \
            simulated_digest(pooled["points"])
        assert inline["merged"]["simulated_instructions"] > 0

    def test_kernel_streams_routed_to_faulting_core(self):
        """Fault-driven kernel work must execute on the faulting core: with
        one fault-taking process per core, both cores accumulate kernel
        instructions and the channel's routing assertions stay silent."""
        system = MultiCoreVirtuoso(multicore_config(), num_cores=2, seed=7)
        result = system.run(fault_heavy_workloads())
        for report in result.core_reports:
            assert report.kernel_instructions > 0
        total = sum(r.kernel_instructions for r in result.core_reports)
        assert total == result.merged.kernel_instructions
        assert system.coupling.counters.get("page_faults") > 0


class TestMultiCoreContextSwitches:
    """Context-switch and migration correctness: TLBs and the VPN
    translation cache must never leak across processes or cores."""

    def test_interleaving_context_switches_flush_tlbs(self):
        system = MultiCoreVirtuoso(multicore_config(batch_size=512),
                                   num_cores=1, seed=7)
        result = system.run(two_process_workloads())
        kernel_counters = result.merged.details["kernel"]["kernel"]
        switches = kernel_counters.get("context_switches", 0)
        assert switches > 2, "chunk interleaving should context-switch repeatedly"
        unit = system.cores[0]
        # Every switch flushed all four TLBs of the core.
        assert unit.tlbs.l1d_4k.counters.get("flushes") == switches
        assert unit.tlbs.l2.counters.get("flushes") == switches

    def test_context_switch_invalidates_vpn_cache(self):
        """After a run leaves VPN-cache entries behind, switching another
        process in must drop them (set_context clears the per-core cache)."""
        system = MultiCoreVirtuoso(multicore_config(), num_cores=1, seed=7)
        system.run([SequentialWorkload(footprint_bytes=1 * MB,
                                       memory_operations=800, prefault=True,
                                       seed=2)])
        unit = system.cores[0]
        assert unit.mmu.fast_hits > 0
        other = system.create_process("other")
        system.kernel.context_switch(unit.index, other)
        unit.mmu.set_context(other.pid, other.page_table, flush_tlbs=True)
        assert unit.mmu.fast_path_stats()["entries"] == 0

    def test_migrate_in_flushes_tlbs_and_vpn_cache(self):
        """MMU.migrate_in must behave exactly like a flushing set_context:
        no TLB entry and no VPN-cache entry survives the migration."""
        system = MultiCoreVirtuoso(multicore_config(), num_cores=2, seed=7)
        workload = SequentialWorkload(footprint_bytes=1 * MB,
                                      memory_operations=800, prefault=True,
                                      seed=2)
        result = system.run([workload])
        source = system.cores[0]
        target = system.cores[1]
        process = source.tasks[0].process
        assert result.merged.instructions > 0
        assert source.mmu.fast_hits > 0
        # Warm the target core with the same process, then migrate in.
        target.mmu.migrate_in(process.pid, process.page_table)
        assert target.mmu.fast_path_stats()["entries"] == 0
        assert target.tlbs.l1d_4k.counters.get("flushes") >= 1
        assert target.mmu.pid == process.pid

    def test_migration_policy_counts_and_stays_deterministic(self):
        """Rotating assignment migrates processes across cores; the kernel
        counts the migrations and results stay deterministic."""
        def run_once():
            system = MultiCoreVirtuoso(multicore_config(batch_size=256),
                                       num_cores=2, seed=7)
            result = system.run(two_process_workloads(), migrate_every=2)
            return system, result
        system, result = run_once()
        kernel_counters = result.merged.details["kernel"]["kernel"]
        assert kernel_counters.get("process_migrations", 0) > 0
        for process in system.kernel.processes.values():
            assert process.counters.get("time_slices") > 0
        _, again = run_once()
        assert_merged_reports_identical(result.merged, again.merged)

    def test_run_queue_drives_assignment(self):
        """Tasks are admitted through the MimicOS run queue and land on
        cores round-robin in FIFO order."""
        system = MultiCoreVirtuoso(multicore_config(), num_cores=2, seed=7)
        workloads = two_process_workloads()
        result = system.run(workloads)
        assert len(system.cores[0].tasks) == 1
        assert len(system.cores[1].tasks) == 1
        assert system.cores[0].tasks[0].name == workloads[0].name
        assert system.cores[1].tasks[0].name == workloads[1].name
        assert not system.kernel.run_queue  # fully drained into the cores
        assert system.kernel.current_pid(0) == system.cores[0].tasks[0].process.pid
        assert result.merged.instructions > 0
