"""Fast-path invariance tests: the batch engine and the VPN translation
cache must change *host* throughput only — never a simulated statistic.

Five families:

* batch streams — every array-native ``instruction_batches`` override must
  emit the exact (kind, pc, address) sequence of its ``instructions``;
* vectorisation — the numpy-backed generators must emit the exact sequence
  of the pure-python fallback (RNG draws included);
* engine/cache invariance — legacy vs batch engine and VPN-cache on vs off
  must produce bit-identical reports (cycles, IPC, walks, TLB counters,
  faults, memory-system counters), including the kernel path
  (``kernel_cycles``, ``kernel_instructions``, coupling/channel counters)
  on fault-heavy workloads;
* kernel batches — ``InstrumentationTool.expand_batch`` and its
  ``expand`` compatibility view must describe the same instruction stream;
* invalidation — ``activate_process``, TLB flushes and page-table unmaps
  must invalidate the VPN cache so no stale fast hit can occur.
"""

from dataclasses import replace

import pytest

import repro.workloads.base as workloads_base
from repro.common.addresses import MB, PAGE_SIZE_4K
from repro.common.config import CacheConfig, DRAMConfig, TLBConfig
from repro.common.kernelops import KernelRoutineTrace
from repro.core.channels import InstructionStreamChannel
from repro.core.cpu import CoreModel
from repro.core.instructions import KIND_TO_OP, OP_MAGIC, InstructionKind
from repro.core.instrumentation import InstrumentationTool
from repro.core.virtuoso import Virtuoso
from repro.memhier.memory_system import MemoryHierarchy
from repro.mimicos.kernel import MimicOS
from repro.mmu.extensions import MMUExtensions
from repro.mmu.mmu import MMU, MemoryOperationResult, TranslationResult
from repro.mmu.tlb import TLBHierarchy
from repro.pagetables.radix import RadixPageTable
from repro.common.config import PageTableConfig
from repro.workloads import (
    GUPSWorkload,
    IntensitySweepWorkload,
    KernelFractionMicrobenchmark,
    LLMInferenceWorkload,
    PointerChaseWorkload,
    SequentialWorkload,
    StridedWorkload,
)
from repro.workloads.base import numpy_available, set_vectorization
from tests.conftest import tiny_mimicos_config, tiny_system_config

REPORT_FIELDS = [
    "instructions", "kernel_instructions", "cycles", "ipc",
    "page_walks", "l2_tlb_misses", "page_faults", "major_faults",
    "total_translation_latency", "total_ptw_latency", "average_ptw_latency",
    "total_fault_latency", "dram_accesses", "dram_row_conflicts",
    "llc_misses", "translation_stall_cycles", "fault_stall_cycles",
    "data_stall_cycles", "swapped_pages",
]


def run_system(workload_factory, engine="batch", extensions=None, seed=7,
               os_mode="imitation"):
    config = tiny_system_config()
    config = config.with_simulation(replace(config.simulation, engine=engine,
                                            os_mode=os_mode))
    system = Virtuoso(config, seed=seed, mmu_extensions=extensions)
    report = system.run(workload_factory())
    return system, report


def assert_reports_identical(first, second):
    for field in REPORT_FIELDS:
        assert getattr(first, field) == getattr(second, field), field
    assert first.details["mmu"]["counters"] == second.details["mmu"]["counters"]
    assert first.details["mmu"]["tlbs"] == second.details["mmu"]["tlbs"]
    assert first.details["memory"] == second.details["memory"]
    assert first.details["core"] == second.details["core"]
    assert first.details["coupling"] == second.details["coupling"]


class TestBatchStreamsMatchInstructionStreams:
    """Array-native batch generators must replay instructions() exactly."""

    WORKLOADS = [
        lambda: GUPSWorkload(footprint_bytes=4 * MB, memory_operations=600, seed=3),
        lambda: SequentialWorkload(footprint_bytes=4 * MB, memory_operations=600, seed=4),
        lambda: PointerChaseWorkload(footprint_bytes=4 * MB, memory_operations=400, seed=5),
        lambda: IntensitySweepWorkload(0.6, memory_operations=400, prefault=False, seed=6),
        lambda: KernelFractionMicrobenchmark(0.5, memory_operations=400, seed=8),
        lambda: LLMInferenceWorkload("Bagel", scale=0.1, seed=9),
    ]

    @pytest.mark.parametrize("factory", WORKLOADS)
    def test_sequences_identical(self, factory):
        kernel = MimicOS(tiny_mimicos_config(), PageTableConfig(kind="radix"))
        process = kernel.create_process("batchcheck")
        workload = factory()
        workload.setup(kernel, process)

        expected = [(i.kind, i.pc, i.memory_address)
                    for i in workload.instructions(process)]
        got = []
        for batch in workload.instruction_batches(process, batch_size=257):
            got.extend((i.kind, i.pc, i.memory_address)
                       for i in batch.iter_instructions())
        assert got == expected


class TestVectorizedGenerationMatchesFallback:
    """numpy-backed array construction must replay the pure-python path."""

    WORKLOADS = [
        lambda: GUPSWorkload(footprint_bytes=4 * MB, memory_operations=600, seed=3),
        lambda: SequentialWorkload(footprint_bytes=4 * MB, memory_operations=600, seed=4),
        lambda: StridedWorkload(footprint_bytes=4 * MB, memory_operations=300, seed=12),
        lambda: PointerChaseWorkload(footprint_bytes=4 * MB, memory_operations=400, seed=5),
        lambda: IntensitySweepWorkload(0.6, memory_operations=400, prefault=False, seed=6),
        lambda: KernelFractionMicrobenchmark(0.5, memory_operations=400, seed=8),
        lambda: LLMInferenceWorkload("Bagel", scale=0.1, seed=9),
    ]

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    @pytest.mark.parametrize("factory", WORKLOADS)
    def test_vectorized_sequences_identical(self, factory):
        kernel = MimicOS(tiny_mimicos_config(), PageTableConfig(kind="radix"))
        process = kernel.create_process("veccheck")
        workload = factory()
        workload.setup(kernel, process)

        def sequence(vectorize):
            set_vectorization(vectorize)
            try:
                out = []
                for batch in workload.instruction_batches(process, batch_size=257):
                    out.extend(zip(batch.kinds, batch.pcs, batch.addresses))
                return out
            finally:
                set_vectorization(True)

        assert sequence(True) == sequence(False)

    def test_set_vectorization_reports_effective_state(self):
        original = workloads_base.vectorization_enabled()
        try:
            assert set_vectorization(False) is False
            assert set_vectorization(True) is numpy_available()
        finally:
            set_vectorization(original)


class TestKernelBatchExpansion:
    """expand_batch and its expand() view must describe one stream."""

    def make_trace(self):
        trace = KernelRoutineTrace("do_page_fault")
        entry = trace.new_op("fault_entry", work_units=6)
        entry.touch(0xFFFF_8000_0000_1000, is_write=False)
        alloc = trace.new_op("buddy_alloc", work_units=24)
        alloc.touch(0xFFFF_8000_0000_2000, is_write=True)
        alloc.touch(0xFFFF_8000_0000_2040, is_write=False)
        zero = trace.new_op("zero_page", work_units=4096)
        zero.touch(0xFFFF_8000_0000_3000, is_write=True)
        trace.new_op("fault_return", work_units=2)
        return trace

    def test_expand_view_matches_batch(self):
        tool = InstrumentationTool()
        trace = self.make_trace()
        batch = tool.expand_batch(trace)
        stream = tool.expand(self.make_trace())
        assert len(batch) == len(stream)
        from_batch = [(i.kind, i.pc, i.memory_address, i.repeat, i.is_kernel)
                      for i in batch.iter_instructions()]
        from_stream = [(i.kind, i.pc, i.memory_address, i.repeat, i.is_kernel)
                       for i in stream]
        assert from_batch == from_stream
        assert all(is_kernel for *_, is_kernel in from_batch)
        assert any(repeat >= 4096 for *_, repeat, _ in from_batch)

    def test_expansion_counters_exact_on_both_paths(self):
        batch_tool = InstrumentationTool()
        stream_tool = InstrumentationTool()
        batch = batch_tool.expand_batch(self.make_trace())
        stream = stream_tool.expand(self.make_trace())
        assert batch_tool.stats() == stream_tool.stats()
        assert batch_tool.stats()["instructions_generated"] == len(batch) == len(stream)
        assert batch_tool.stats()["routines_instrumented"] == 1

    def test_channel_batch_terminator_and_counts(self):
        channel = InstructionStreamChannel()
        tool = InstrumentationTool()
        batch = tool.expand_batch(self.make_trace())
        length = len(batch)
        channel.push_batch(batch)
        delivered = channel.pop()
        assert delivered.kinds[-1] == OP_MAGIC
        assert len(delivered) == length + 1
        assert channel.total_instructions == length
        assert channel.pop() is None


class TestEngineInvariance:
    def test_batch_engine_matches_legacy_engine(self):
        factory = lambda: GUPSWorkload(footprint_bytes=4 * MB,
                                       memory_operations=1200, seed=5)
        _, legacy = run_system(factory, engine="legacy")
        system, batch = run_system(factory, engine="batch")
        assert_reports_identical(legacy, batch)
        assert system.mmu.fast_hits > 0

    @pytest.mark.parametrize("os_mode", ["imitation", "full_system"])
    def test_kernel_batch_matches_kernel_stream_on_fault_heavy(self, os_mode):
        """The array-backed kernel path must be bit-identical to the
        per-object path where it matters most: fault-dominated runs."""
        for factory in (
            lambda: LLMInferenceWorkload("Bagel", scale=0.1, seed=9),
            lambda: KernelFractionMicrobenchmark(0.8, memory_operations=1500, seed=8),
        ):
            _, legacy = run_system(factory, engine="legacy", os_mode=os_mode)
            _, batch = run_system(factory, engine="batch", os_mode=os_mode)
            assert legacy.kernel_instructions > 0
            assert batch.kernel_instructions == legacy.kernel_instructions
            assert batch.details["core"]["breakdown"]["kernel"] == \
                legacy.details["core"]["breakdown"]["kernel"]
            assert batch.details["core"]["counters"] == legacy.details["core"]["counters"]
            assert_reports_identical(legacy, batch)

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_vectorization_on_off_invariance(self):
        """Vectorised generation must not change a single simulated stat."""
        factory = lambda: LLMInferenceWorkload("Bagel", scale=0.1, seed=9)
        try:
            set_vectorization(True)
            _, on = run_system(factory)
            set_vectorization(False)
            _, off = run_system(factory)
        finally:
            set_vectorization(True)
        assert_reports_identical(on, off)

    def test_vpn_cache_on_off_invariance(self):
        for factory in (
            lambda: SequentialWorkload(footprint_bytes=4 * MB,
                                       memory_operations=2000, prefault=True, seed=2),
            lambda: GUPSWorkload(footprint_bytes=4 * MB, memory_operations=1200, seed=5),
        ):
            on_system, on_report = run_system(factory, extensions=MMUExtensions())
            off_system, off_report = run_system(
                factory, extensions=MMUExtensions(vpn_translation_cache=False))
            assert_reports_identical(on_report, off_report)
            assert on_system.mmu.fast_hits > 0
            assert off_system.mmu.fast_hits == 0

    def test_max_instructions_exact_with_batches(self):
        factory = lambda: SequentialWorkload(footprint_bytes=4 * MB,
                                             memory_operations=5000, prefault=True)
        config = tiny_system_config()
        system = Virtuoso(config, seed=7)
        report = system.run(factory(), max_instructions=777)
        assert report.instructions == 777


class TestVPNCacheInvalidation:
    def make_mmu(self):
        memory = MemoryHierarchy(
            l1_config=CacheConfig("L1", 4 * 1024, 4, 2),
            l2_config=CacheConfig("L2", 16 * 1024, 4, 8),
            l3_config=CacheConfig("L3", 64 * 1024, 8, 20),
            dram_config=DRAMConfig(capacity_bytes=1 << 30),
        )
        tlbs = TLBHierarchy(
            l1i=TLBConfig("L1I", 16, 4, 1),
            l1d_4k=TLBConfig("L1D4K", 16, 4, 1),
            l1d_2m=TLBConfig("L1D2M", 8, 4, 1, page_sizes=(2 << 20,)),
            l2=TLBConfig("L2", 64, 8, 8, page_sizes=(PAGE_SIZE_4K, 2 << 20)),
        )
        mmu = MMU(tlbs, memory)
        table = RadixPageTable()
        mmu.set_context(pid=1, page_table=table)
        return mmu, table

    def warm(self, mmu, address):
        """Walk + fill, then an L1 hit that records the VPN cache entry."""
        mmu.access_data_fast(address)          # miss -> walk -> fill
        mmu.access_data_fast(address)          # L1 hit -> recorded
        hits_before = mmu.fast_hits
        mmu.access_data_fast(address)          # fast hit
        assert mmu.fast_hits == hits_before + 1
        assert mmu.fast_path_stats()["entries"] > 0

    def test_tlb_flush_invalidates(self):
        mmu, table = self.make_mmu()
        table.insert(0x1000, 0xA000, PAGE_SIZE_4K)
        self.warm(mmu, 0x1000)
        mmu.tlbs.flush()
        hits = mmu.fast_hits
        result = mmu.access_data_fast(0x1040)
        assert mmu.fast_hits == hits            # took the slow path
        assert result.translation.walked        # TLBs were empty again
        assert result.translation.physical_address == 0xA040

    def test_page_table_unmap_invalidates(self):
        mmu, table = self.make_mmu()
        table.insert(0x1000, 0xA000, PAGE_SIZE_4K)
        self.warm(mmu, 0x1000)
        table.remove(0x1000)
        hits = mmu.fast_hits
        mmu.access_data_fast(0x1000)
        assert mmu.fast_hits == hits            # fast path declined to answer
        # Any page-table mutation (insert included) must also invalidate.
        self.warm(mmu, 0x1000)                  # re-warm via the (stale) TLB entry
        table.insert(0x9000, 0xB000, PAGE_SIZE_4K)
        hits = mmu.fast_hits
        mmu.access_data_fast(0x1000)
        assert mmu.fast_hits == hits

    def test_set_context_and_activate_process_invalidate(self):
        mmu, table = self.make_mmu()
        table.insert(0x1000, 0xA000, PAGE_SIZE_4K)
        self.warm(mmu, 0x1000)
        other = RadixPageTable()
        mmu.set_context(pid=2, page_table=other, flush_tlbs=True)
        assert mmu.fast_path_stats()["entries"] == 0

        config = tiny_system_config()
        system = Virtuoso(config, seed=7)
        first = system.create_process("a")
        workload = SequentialWorkload(footprint_bytes=1 * MB,
                                      memory_operations=500, prefault=True)
        system.run(workload, process=first)
        assert system.mmu.fast_hits > 0
        second = system.create_process("b")
        system.activate_process(second)
        assert system.mmu.fast_path_stats()["entries"] == 0


class TestTranslationPenaltyAccounting:
    def test_negative_translation_penalty_raises(self):
        """Accounting bugs (latency < fault latency + 1) must surface loudly."""
        config = tiny_system_config()
        system = Virtuoso(config, seed=7)
        core = system.core

        bogus_translation = TranslationResult(virtual_address=0x1000, latency=3,
                                              fault_latency=10, page_fault=True)
        bogus = MemoryOperationResult(translation=bogus_translation, data_latency=0,
                                      served_by="L1", total_latency=3)
        core.mmu.access_data = lambda *args, **kwargs: bogus

        from repro.core.instructions import Instruction, InstructionKind
        with pytest.raises(AssertionError, match="negative translation component"):
            core.execute(Instruction(kind=InstructionKind.LOAD, memory_address=0x1000))

    def test_zero_latency_translation_is_not_an_error(self):
        """A zero-latency frontend (nothing to overlap) must not trip the assert."""
        config = tiny_system_config()
        system = Virtuoso(config, seed=7)
        core = system.core
        free_translation = TranslationResult(virtual_address=0x1000, latency=0)
        free = MemoryOperationResult(translation=free_translation, data_latency=0,
                                     served_by="L1", total_latency=0)
        core.mmu.access_data = lambda *args, **kwargs: free

        from repro.core.instructions import Instruction, InstructionKind
        before = core.cycles
        core.execute(Instruction(kind=InstructionKind.LOAD, memory_address=0x1000))
        assert core.cycles == before + config.core.base_cpi
        assert core.breakdown.translation_cycles == 0.0
