"""Tier-1 regression sweep over the banked fuzz corpus, plus durability tests.

Two jobs live here:

* replay every committed reproducer in ``tests/fuzz_corpus/`` through the
  differential oracle — each fuzzer catch stays fixed forever;
* prove the corpus layer's durability contract: atomic banking (no torn or
  leftover tmp files), content-hash dedupe, and tolerant loading that turns
  corrupt entries into :class:`CorpusWarning` skips instead of tier-1 crashes.
"""

import json
import warnings
from pathlib import Path

import pytest

from repro.validation import corpus
from repro.validation.corpus import (
    CORPUS_SCHEMA,
    CorpusWarning,
    DEFAULT_CORPUS_DIR,
    entry_name,
    load_corpus,
    load_entry,
    save_entry,
)
from repro.validation.fuzz import FuzzConfig, FuzzScenario, replay_corpus
from repro.workloads.schedule import KernelOpSpec, OpSchedule


def minimal_entry(**extra) -> dict:
    """A tiny valid corpus entry: vanilla gups config, empty op schedule."""
    scenario = FuzzScenario(config=FuzzConfig(), schedule=OpSchedule(ops=()))
    entry = {"schema": CORPUS_SCHEMA, "scenario": scenario.to_json()}
    entry.update(extra)
    return entry


class TestBankedCorpusReplays:
    """The committed corpus is the fuzzer's permanent regression suite."""

    def test_committed_corpus_exists(self):
        assert DEFAULT_CORPUS_DIR.is_dir()
        assert list(DEFAULT_CORPUS_DIR.glob("*.json")), \
            "the seed corpus should ship at least one banked reproducer"

    def test_corpus_replays_identical_on_healthy_build(self):
        report = replay_corpus()
        assert report["skipped"] == 0, "committed corpus entries must all load"
        assert report["entries"] >= 1
        assert report["failures"] == [], (
            "banked reproducers re-diverged: " + json.dumps(report["failures"]))

    def test_committed_entries_are_minimal_and_provenanced(self):
        entries, skipped = load_corpus()
        assert skipped == 0
        for path, entry in entries:
            scenario = FuzzScenario.from_json(entry["scenario"])
            assert len(scenario.schedule) <= 8, f"{path.name}: not shrunk"
            assert "divergence" in entry, f"{path.name}: missing oracle record"
            assert "found" in entry, f"{path.name}: missing provenance"
            assert path.stem == entry_name(entry), \
                f"{path.name}: filename drifted from its content hash"


class TestAtomicBanking:
    def test_save_leaves_no_tmp_remnants(self, tmp_path):
        path = save_entry(minimal_entry(), corpus_dir=tmp_path)
        assert path.parent == tmp_path
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [path.name]
        assert not any(n.endswith(".tmp") for n in names)
        # The write is complete JSON, not a torn prefix.
        assert load_entry(path)["schema"] == CORPUS_SCHEMA

    def test_refinding_same_scenario_overwrites_not_duplicates(self, tmp_path):
        first = save_entry(minimal_entry(found={"fuzz_seed": 1}),
                           corpus_dir=tmp_path)
        second = save_entry(minimal_entry(found={"fuzz_seed": 99}),
                            corpus_dir=tmp_path)
        assert first == second, "same scenario must hash to the same filename"
        assert len(list(tmp_path.glob("*.json"))) == 1
        assert load_entry(first)["found"] == {"fuzz_seed": 99}

    def test_different_schedules_get_different_files(self, tmp_path):
        save_entry(minimal_entry(), corpus_dir=tmp_path)
        mutated = FuzzScenario(
            config=FuzzConfig(),
            schedule=OpSchedule(ops=(KernelOpSpec("reclaim", 5, {"pages": 2}),)))
        save_entry({"schema": CORPUS_SCHEMA, "scenario": mutated.to_json()},
                   corpus_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 2


class TestCorruptEntriesNeverCrash:
    def corrupted_dir(self, tmp_path: Path) -> Path:
        save_entry(minimal_entry(), corpus_dir=tmp_path)
        (tmp_path / "truncated.json").write_text('{"schema": "fuzz_repro/v1", "scen')
        (tmp_path / "not-a-dict.json").write_text('[1, 2, 3]')
        (tmp_path / "alien-schema.json").write_text(
            json.dumps({"schema": "fuzz_repro/v999", "scenario": {}}))
        (tmp_path / "no-scenario.json").write_text(
            json.dumps({"schema": CORPUS_SCHEMA}))
        return tmp_path

    def test_load_corpus_skips_each_with_warning(self, tmp_path):
        directory = self.corrupted_dir(tmp_path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            entries, skipped = load_corpus(directory)
        assert len(entries) == 1
        assert skipped == 4
        corpus_warnings = [w for w in caught
                           if issubclass(w.category, CorpusWarning)]
        assert len(corpus_warnings) == 4
        warned_files = {str(w.message).split(":")[0] for w in corpus_warnings}
        assert "skipping corpus entry truncated.json" in warned_files

    def test_replay_survives_corrupt_entries(self, tmp_path):
        directory = self.corrupted_dir(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CorpusWarning)
            report = replay_corpus(directory)
        assert report["entries"] == 1
        assert report["skipped"] == 4
        assert report["failures"] == []

    def test_missing_corpus_dir_is_empty_not_fatal(self, tmp_path):
        entries, skipped = load_corpus(tmp_path / "never-created")
        assert entries == [] and skipped == 0

    def test_load_entry_is_strict(self, tmp_path):
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "other/v1", "scenario": {}}))
        with pytest.raises(ValueError, match="not a fuzz_repro/v1"):
            load_entry(wrong)
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps({"schema": CORPUS_SCHEMA}))
        with pytest.raises(ValueError, match="no scenario"):
            load_entry(bare)
