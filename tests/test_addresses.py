"""Unit and property tests for address/page-size arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.common.addresses import (
    GB,
    MB,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    PageSize,
    align_down,
    align_up,
    canonical,
    is_aligned,
    is_power_of_two,
    join_vpn_radix,
    page_base,
    page_number,
    page_offset,
    pages_spanned,
    size_to_human,
    split_vpn_radix,
)


class TestConstants:
    def test_page_sizes(self):
        assert PAGE_SIZE_4K == 4096
        assert PAGE_SIZE_2M == 2 * 1024 * 1024
        assert PAGE_SIZE_1G == 1024 * 1024 * 1024

    def test_page_size_enum_shift(self):
        assert PageSize.SIZE_4K.shift == 12
        assert PageSize.SIZE_2M.shift == 21
        assert PageSize.SIZE_1G.shift == 30

    def test_page_size_from_bytes(self):
        assert PageSize.from_bytes(4096) is PageSize.SIZE_4K
        with pytest.raises(ValueError):
            PageSize.from_bytes(8192)


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x1234, 0x1000) == 0x1000
        assert align_down(0x1000, 0x1000) == 0x1000

    def test_align_up(self):
        assert align_up(0x1234, 0x1000) == 0x2000
        assert align_up(0x1000, 0x1000) == 0x1000

    def test_align_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            align_down(100, 3)
        with pytest.raises(ValueError):
            align_up(100, 12)

    def test_is_aligned(self):
        assert is_aligned(0x2000, 0x1000)
        assert not is_aligned(0x2001, 0x1000)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(24)

    @given(st.integers(min_value=0, max_value=2 ** 48),
           st.sampled_from([PAGE_SIZE_4K, PAGE_SIZE_2M, PAGE_SIZE_1G]))
    def test_align_roundtrip_property(self, address, page_size):
        down = align_down(address, page_size)
        up = align_up(address, page_size)
        assert down <= address <= up
        assert is_aligned(down, page_size)
        assert is_aligned(up, page_size)
        assert up - down in (0, page_size)


class TestPageArithmetic:
    def test_page_number_and_offset(self):
        assert page_number(0x5042) == 5
        assert page_offset(0x5042) == 0x42
        assert page_base(0x5042) == 0x5000

    def test_pages_spanned(self):
        assert pages_spanned(0, 4096) == 1
        assert pages_spanned(0, 4097) == 2
        assert pages_spanned(100, 4096) == 2
        assert pages_spanned(0, 0) == 0

    @given(st.integers(min_value=0, max_value=2 ** 40), st.integers(min_value=1, max_value=1 << 24))
    def test_pages_spanned_property(self, start, length):
        spanned = pages_spanned(start, length)
        minimum = length // PAGE_SIZE_4K
        assert spanned >= max(1, minimum)
        # An unaligned range can straddle one extra page at each end.
        assert spanned <= minimum + 2


class TestRadixSplit:
    def test_split_has_four_levels(self):
        indices = split_vpn_radix(0)
        assert indices == [0, 0, 0, 0]

    def test_split_known_value(self):
        # Address with PGD index 1 only: 1 << (12 + 27) == 1 << 39.
        indices = split_vpn_radix(1 << 39)
        assert indices == [1, 0, 0, 0]

    def test_join_inverse_of_split(self):
        address = 0x7F12_3456_7000
        assert join_vpn_radix(split_vpn_radix(address)) == align_down(canonical(address),
                                                                      PAGE_SIZE_4K)

    def test_join_requires_four_indices(self):
        with pytest.raises(ValueError):
            join_vpn_radix([1, 2, 3])

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_split_join_roundtrip_property(self, address):
        page_aligned = align_down(address, PAGE_SIZE_4K)
        assert join_vpn_radix(split_vpn_radix(address)) == page_aligned

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_split_indices_in_range_property(self, address):
        for index in split_vpn_radix(address):
            assert 0 <= index < 512


class TestHumanSizes:
    def test_size_to_human(self):
        assert size_to_human(4096) == "4KB"
        assert size_to_human(2 * MB) == "2MB"
        assert size_to_human(3 * GB) == "3GB"
        assert size_to_human(100) == "100B"
