"""Unit and property tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import (
    Counter,
    Histogram,
    LatencyDistribution,
    RunningStats,
    accuracy,
    cosine_similarity,
    geometric_mean,
    mpki,
    normalize,
    percentile,
    safe_ratio,
)


class TestCosineSimilarity:
    def test_identical_vectors(self):
        assert cosine_similarity([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_scaled_vectors_are_similar(self):
        assert cosine_similarity([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            cosine_similarity([1], [1, 2])

    def test_zero_vectors(self):
        assert cosine_similarity([0, 0], [0, 0]) == 1.0
        assert cosine_similarity([0, 0], [1, 1]) == 0.0

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=50))
    def test_self_similarity_property(self, values):
        assert cosine_similarity(values, values) == pytest.approx(1.0)


class TestAccuracy:
    def test_exact_estimate(self):
        assert accuracy(10.0, 10.0) == 1.0

    def test_half_error(self):
        assert accuracy(5.0, 10.0) == pytest.approx(0.5)

    def test_clamped_at_zero(self):
        assert accuracy(100.0, 10.0) == 0.0

    def test_zero_measured(self):
        assert accuracy(0.0, 0.0) == 1.0
        assert accuracy(1.0, 0.0) == 0.0

    @given(st.floats(min_value=0.01, max_value=1e6),
           st.floats(min_value=0.01, max_value=1e6))
    def test_bounds_property(self, estimate, measured):
        assert 0.0 <= accuracy(estimate, measured) <= 1.0


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_single(self):
        assert geometric_mean([7.5]) == pytest.approx(7.5)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_bounds(self):
        assert percentile([5, 1, 9], 0.0) == 1
        assert percentile([5, 1, 9], 1.0) == 9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_bad_fraction_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestNormalize:
    def test_normalize(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_zero_reference_raises(self):
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)


class TestCounter:
    def test_add_and_get(self):
        counter = Counter()
        counter.add("hits")
        counter.add("hits", 4)
        assert counter.get("hits") == 5
        assert counter.get("missing") == 0

    def test_merge(self):
        a, b = Counter(), Counter()
        a.add("x", 2)
        b.add("x", 3)
        b.add("y", 1)
        a.merge(b)
        assert a.get("x") == 5
        assert a.get("y") == 1

    def test_reset(self):
        counter = Counter()
        counter.add("x")
        counter.reset()
        assert counter.get("x") == 0


class TestRunningStats:
    def test_mean_and_extremes(self):
        stats = RunningStats()
        for value in [1.0, 2.0, 3.0]:
            stats.add(value)
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.total == 6.0

    def test_variance(self):
        stats = RunningStats()
        for value in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            stats.add(value)
        assert stats.variance == pytest.approx(4.0)
        assert stats.stddev == pytest.approx(2.0)

    def test_merge_matches_single_stream(self):
        merged = RunningStats()
        a, b = RunningStats(), RunningStats()
        for value in [1.0, 5.0, 9.0]:
            a.add(value)
            merged.add(value)
        for value in [2.0, 4.0]:
            b.add(value)
            merged.add(value)
        a.merge(b)
        assert a.count == merged.count
        assert a.mean == pytest.approx(merged.mean)
        assert a.variance == pytest.approx(merged.variance)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_mean_matches_naive_property(self, values):
        stats = RunningStats()
        for value in values:
            stats.add(value)
        assert stats.mean == pytest.approx(sum(values) / len(values), rel=1e-6, abs=1e-6)


class TestHistogram:
    def test_add_and_total(self):
        histogram = Histogram()
        histogram.add("a")
        histogram.add("a", 2)
        histogram.add("b")
        assert histogram.get("a") == 3
        assert histogram.total == 4


class TestLatencyDistribution:
    def test_summary_of_empty(self):
        dist = LatencyDistribution()
        assert dist.summary()["count"] == 0

    def test_basic_statistics(self):
        dist = LatencyDistribution()
        for value in [10, 20, 30, 40, 1000]:
            dist.add(value)
        assert dist.count == 5
        assert dist.median == 30
        assert dist.total == 1100
        assert dist.stats.maximum == 1000

    def test_tail_contribution(self):
        dist = LatencyDistribution()
        for value in [1, 1, 1, 1, 96]:
            dist.add(value)
        assert dist.tail_contribution(10) == pytest.approx(0.96)
        assert dist.tail_contribution(1000) == 0.0

    def test_max_samples_respected(self):
        dist = LatencyDistribution(max_samples=10)
        for value in range(100):
            dist.add(float(value))
        assert len(dist.samples) == 10
        assert dist.count == 100


class TestSmallHelpers:
    def test_mpki(self):
        assert mpki(10, 1000) == 10.0
        assert mpki(10, 0) == 0.0

    def test_safe_ratio(self):
        assert safe_ratio(1, 2) == 0.5
        assert safe_ratio(1, 0, default=-1.0) == -1.0
