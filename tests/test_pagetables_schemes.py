"""Tests for Utopia, RMM, Midgard, direct segments, VBI and the factory."""

import pytest

from repro.common.addresses import GB, MB, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.config import PageTableConfig
from repro.common.kernelops import KernelRoutineTrace
from repro.mimicos.buddy import BuddyAllocator
from repro.mimicos.vma import VMAKind, VirtualMemoryArea
from repro.pagetables.base import PageTableBase
from repro.pagetables.cuckoo import ElasticCuckooPageTable
from repro.pagetables.direct_segments import DirectSegmentTable
from repro.pagetables.factory import build_page_table
from repro.pagetables.hashchain import ChainedHashPageTable
from repro.pagetables.hdc import OpenAddressingHashPageTable
from repro.pagetables.midgard import MidgardTranslation
from repro.pagetables.radix import RadixPageTable
from repro.pagetables.rmm import RangeMemoryMapping
from repro.pagetables.utopia import UtopiaTranslation
from repro.pagetables.vbi import VirtualBlockInterface
from tests.conftest import FlatMemory


def anon_vma(size=16 * MB, start=0x7F00_0000_0000):
    return VirtualMemoryArea(start=start, end=start + size, kind=VMAKind.ANONYMOUS)


class TestUtopia:
    def make(self, restseg_bytes=8 * MB, associativity=4):
        return UtopiaTranslation(restseg_size_bytes=restseg_bytes,
                                 restseg_associativity=associativity,
                                 restseg_base_address=1 << 40)

    def test_restseg_allocation_places_page_in_segment(self):
        utopia = self.make()
        buddy = BuddyAllocator(64 * MB)
        allocation = utopia.allocate_for_fault(1, 0x7F00_0000_0000, anon_vma(), buddy)
        assert allocation.page_size == PAGE_SIZE_4K
        assert allocation.address >= 1 << 40
        assert utopia.counters.get("restseg_allocations") == 1
        assert buddy.used_bytes == 0  # the RestSeg frame is not a buddy frame

    def test_translation_of_restseg_page_uses_tag_walk(self):
        utopia = self.make()
        buddy = BuddyAllocator(64 * MB)
        memory = FlatMemory()
        virtual = 0x7F00_0000_0000
        allocation = utopia.allocate_for_fault(1, virtual, anon_vma(), buddy)
        utopia.insert(virtual, allocation.address, allocation.page_size)
        result = utopia.walk(virtual, memory)
        assert result.found
        assert result.physical_base == allocation.address
        assert utopia.counters.get("restseg_walks") == 1

    def test_set_conflict_falls_back_to_flexseg(self):
        utopia = self.make(restseg_bytes=4 * PAGE_SIZE_4K, associativity=1)
        buddy = BuddyAllocator(64 * MB)
        vma = anon_vma()
        placed = []
        for index in range(32):
            allocation = utopia.allocate_for_fault(1, vma.start + index * PAGE_SIZE_4K,
                                                   vma, buddy)
            placed.append(allocation)
        assert utopia.counters.get("restseg_set_conflicts") > 0
        assert utopia.counters.get("flexseg_allocations") > 0
        assert buddy.used_bytes > 0

    def test_exhausted_flexseg_evicts_and_reports_swap_victims(self):
        utopia = self.make(restseg_bytes=4 * PAGE_SIZE_4K, associativity=1)
        buddy = BuddyAllocator(16 * PAGE_SIZE_4K, max_order=4)
        vma = anon_vma()
        evictions = 0
        for index in range(64):
            allocation = utopia.allocate_for_fault(1, vma.start + index * PAGE_SIZE_4K,
                                                   vma, buddy)
            evictions += len(allocation.evicted_pages)
        assert evictions > 0
        assert utopia.counters.get("restseg_evictions") == evictions

    def test_flexseg_pages_use_radix_walk(self):
        utopia = self.make(restseg_bytes=4 * PAGE_SIZE_4K, associativity=1)
        buddy = BuddyAllocator(64 * MB)
        memory = FlatMemory()
        vma = anon_vma()
        fallback_virtual = None
        for index in range(16):
            virtual = vma.start + index * PAGE_SIZE_4K
            allocation = utopia.allocate_for_fault(1, virtual, vma, buddy)
            utopia.insert(virtual, allocation.address, allocation.page_size)
            if allocation.fallback:
                fallback_virtual = virtual
        assert fallback_virtual is not None
        result = utopia.walk(fallback_virtual, memory)
        assert result.found
        assert utopia.counters.get("flexseg_walks") >= 1

    def test_restseg_utilisation(self):
        utopia = self.make()
        buddy = BuddyAllocator(64 * MB)
        assert utopia.restseg_utilisation() == 0.0
        utopia.allocate_for_fault(1, 0x7F00_0000_0000, anon_vma(), buddy)
        assert utopia.restseg_utilisation() > 0.0


class TestRMM:
    def test_eager_allocation_creates_range(self):
        rmm = RangeMemoryMapping(eager_paging_max_order=6)
        buddy = BuddyAllocator(64 * MB)
        vma = anon_vma()
        allocation = rmm.allocate_for_fault(1, vma.start, vma, buddy)
        assert rmm.range_count == 1
        covering = rmm.covering_range(vma.start + PAGE_SIZE_4K)
        assert covering is not None
        assert covering.size == PAGE_SIZE_4K << 6
        assert allocation.zeroing_bytes == covering.size

    def test_rlb_hit_avoids_memory_accesses(self):
        rmm = RangeMemoryMapping(eager_paging_max_order=6)
        buddy = BuddyAllocator(64 * MB)
        memory = FlatMemory()
        vma = anon_vma()
        rmm.allocate_for_fault(1, vma.start, vma, buddy)
        first = rmm.walk(vma.start, memory)            # range-table walk, fills the RLB
        second = rmm.walk(vma.start + PAGE_SIZE_4K, memory)
        assert first.found and second.found
        assert first.memory_accesses >= 1
        assert second.memory_accesses == 0
        assert second.latency == rmm.rlb.latency

    def test_eager_allocation_bounded_by_fragmentation(self):
        buddy = BuddyAllocator(64 * MB)
        # Fragment: allocate every 2 MB block, then free only every other one,
        # so no two free buddies can coalesce and the largest free block is 2 MB.
        blocks = []
        while buddy.has_block(9):
            blocks.append(buddy.allocate(9).address)
        for block in blocks[::2]:
            buddy.free(block)
        rmm = RangeMemoryMapping(eager_paging_max_order=12)
        vma = anon_vma()
        rmm.allocate_for_fault(1, vma.start, vma, buddy)
        assert rmm.covering_range(vma.start).size <= PAGE_SIZE_2M
        assert rmm.covering_range(vma.start).size < (PAGE_SIZE_4K << 12)

    def test_functional_lookup_through_range(self):
        rmm = RangeMemoryMapping(eager_paging_max_order=4)
        buddy = BuddyAllocator(64 * MB)
        vma = anon_vma()
        allocation = rmm.allocate_for_fault(1, vma.start, vma, buddy)
        inside = vma.start + 2 * PAGE_SIZE_4K
        physical, size = rmm.lookup(inside)
        assert physical == allocation.address + 2 * PAGE_SIZE_4K
        assert size == PAGE_SIZE_4K

    def test_radix_fallback_outside_ranges(self):
        rmm = RangeMemoryMapping()
        memory = FlatMemory()
        rmm.insert(0x6000_0000, 0x30_0000, PAGE_SIZE_4K)
        result = rmm.walk(0x6000_0000, memory)
        assert result.found
        assert result.physical_base == 0x30_0000


class TestMidgard:
    def test_register_vma_assigns_disjoint_ranges(self):
        midgard = MidgardTranslation()
        a = midgard.register_vma(0x1000_0000, 0x1000_0000 + 4 * MB)
        b = midgard.register_vma(0x2000_0000, 0x2000_0000 + 4 * MB)
        assert a.midgard_start != b.midgard_start
        assert midgard.counters.get("registered_vmas") == 2

    def test_frontend_hit_after_first_translation(self):
        midgard = MidgardTranslation()
        memory = FlatMemory()
        midgard.register_vma(0x1000_0000, 0x1000_0000 + 4 * MB)
        _, first_latency, first_accesses = midgard.translate_frontend(0x1000_0000, memory)
        _, second_latency, second_accesses = midgard.translate_frontend(0x1000_0000, memory)
        assert first_accesses >= 1          # VMA tree walk on the cold miss
        assert second_accesses == 0         # L1 VLB hit
        assert second_latency < first_latency

    def test_walk_end_to_end(self):
        midgard = MidgardTranslation()
        memory = FlatMemory()
        midgard.register_vma(0x1000_0000, 0x1000_0000 + 4 * MB)
        midgard.insert(0x1000_0000, 0x4000_0000, PAGE_SIZE_4K)
        result = midgard.walk(0x1000_0000 + 0x123, memory)
        assert result.found
        assert result.frontend_latency > 0
        assert result.backend_latency > 0

    def test_latency_breakdown_accumulates(self):
        midgard = MidgardTranslation()
        memory = FlatMemory()
        midgard.register_vma(0x1000_0000, 0x1000_0000 + 4 * MB)
        midgard.insert(0x1000_0000, 0x4000_0000, PAGE_SIZE_4K)
        midgard.walk(0x1000_0000, memory)
        breakdown = midgard.latency_breakdown()
        assert breakdown["frontend"] > 0 and breakdown["backend"] > 0

    def test_unregistered_address_faults(self):
        midgard = MidgardTranslation()
        result = midgard.walk(0x9999_0000, FlatMemory())
        assert not result.found

    def test_replaces_tlbs_flag(self):
        assert MidgardTranslation.replaces_tlbs
        assert VirtualBlockInterface.replaces_tlbs
        assert not RadixPageTable.replaces_tlbs


class TestDirectSegment:
    def test_segment_established_on_large_vma(self):
        table = DirectSegmentTable()
        buddy = BuddyAllocator(256 * MB)
        vma = anon_vma(size=128 * MB)
        allocation = table.allocate_for_fault(1, vma.start, vma, buddy)
        assert table.segment_base == vma.start
        assert table.counters.get("segments_established") == 1
        assert allocation.zeroing_bytes > 0

    def test_segment_hits_have_no_walk_traffic(self):
        table = DirectSegmentTable()
        buddy = BuddyAllocator(256 * MB)
        memory = FlatMemory()
        vma = anon_vma(size=128 * MB)
        table.allocate_for_fault(1, vma.start, vma, buddy)
        result = table.walk(vma.start + 5 * PAGE_SIZE_4K, memory)
        assert result.found
        assert result.memory_accesses == 0

    def test_small_vma_uses_radix_path(self):
        table = DirectSegmentTable()
        buddy = BuddyAllocator(64 * MB)
        memory = FlatMemory()
        vma = anon_vma(size=1 * MB, start=0x5000_0000)
        allocation = table.allocate_for_fault(1, vma.start, vma, buddy)
        table.insert(vma.start, allocation.address, PAGE_SIZE_4K)
        result = table.walk(vma.start, memory)
        assert result.found
        assert result.memory_accesses >= 1


class TestVBI:
    def test_backend_translation_single_access(self):
        vbi = VirtualBlockInterface()
        memory = FlatMemory()
        vbi.insert(0x4000_0000, 0x8000_0000, PAGE_SIZE_4K)
        physical, latency, accesses = vbi.translate_backend(0x4000_0000 + 0x123, memory)
        assert physical == 0x8000_0000 + 0x123
        assert accesses == 1

    def test_frontend_is_cheap(self):
        vbi = VirtualBlockInterface()
        _, latency, accesses = vbi.translate_frontend(0x4000_0000, FlatMemory())
        assert latency == vbi.block_table_latency
        assert accesses == 0

    def test_walk_end_to_end(self):
        vbi = VirtualBlockInterface()
        vbi.insert(0x4000_0000, 0x8000_0000, PAGE_SIZE_4K)
        result = vbi.walk(0x4000_0000, FlatMemory())
        assert result.found


class TestFactory:
    @pytest.mark.parametrize("kind,expected", [
        ("radix", RadixPageTable),
        ("ech", ElasticCuckooPageTable),
        ("hdc", OpenAddressingHashPageTable),
        ("ht", ChainedHashPageTable),
        ("utopia", UtopiaTranslation),
        ("rmm", RangeMemoryMapping),
        ("midgard", MidgardTranslation),
        ("direct_segment", DirectSegmentTable),
        ("vbi", VirtualBlockInterface),
    ])
    def test_factory_builds_every_kind(self, kind, expected):
        table = build_page_table(PageTableConfig(kind=kind),
                                 physical_memory_bytes=1 * GB)
        assert isinstance(table, expected)
        assert table.kind == kind

    def test_factory_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            build_page_table(PageTableConfig(kind="quantum"))

    def test_hash_table_scaled_to_physical_memory(self):
        table = build_page_table(PageTableConfig(kind="hdc", hash_table_size_bytes=4 * GB),
                                 physical_memory_bytes=256 * MB)
        assert table.num_buckets * 64 <= 256 * MB
