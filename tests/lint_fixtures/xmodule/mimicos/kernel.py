"""Cross-module fixture, module B: the kernel that owns the shootdown.

``Kernel.munmap`` broadcasts the TLB shootdown and then delegates the
VMA bookkeeping to ``bookkeep.Bookkeeper`` (module A).  The cross-module
edge ``Kernel.munmap -> Bookkeeper.munmap`` is what makes module A's
mutator provably covered; the sensitivity test deletes the delegation
call and expects the finding to come back.
"""

from mimicos.bookkeep import Bookkeeper


class Kernel:
    def __init__(self):
        self.books = Bookkeeper()

    def tlb_shootdown(self, vma):
        pass

    def munmap(self, vma):
        self.tlb_shootdown(vma)
        self.books.munmap(vma)
