"""Cross-module fixture, module A: a pure-bookkeeping mutator.

``Bookkeeper.munmap`` drops the mapping without any invalidation of its
own — the caller (``kernel.Kernel.munmap``, in module B) broadcasts the
shootdown.  Under PR 9's intra-module graph this site needed a
caller-holds-contract pragma; the whole-program caller-coverage check
proves it instead.
"""


class Bookkeeper:
    def __init__(self):
        self.mappings = {}

    def munmap(self, vma):
        self.mappings.pop(vma, None)
