"""R5 positive fixtures: asymmetric engine pair and an orphan report read."""


class Engine:
    def __init__(self, counters):
        self.counters = counters
        self._c_steps = self.counters.hot("steps")

    def execute(self, ops):
        for _ in ops:
            self._c_steps[0] += 1
            self.counters.add("ops_retired")

    def execute_batch(self, ops):
        # BUG SHAPE: never touches ops_retired — the engines diverge.
        self._c_steps[0] += len(ops)


def build_report(counters):
    # BUG SHAPE: nothing ever writes this counter; the field is always 0.
    return {"walks": counters.get("page_walks_typo")}
