"""R6 positive fixtures: missing and literal seeds at construction."""

from repro.common.rng import DeterministicRNG


def default_stream():
    # BUG SHAPE: no seed at all — every caller shares one stream.
    return DeterministicRNG()


def baked_stream():
    # BUG SHAPE: constant seed — distinct configs collapse onto one stream.
    return DeterministicRNG(seed=42)
