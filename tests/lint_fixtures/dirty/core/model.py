"""R1 positive fixtures: every determinism violation shape in one module."""

import random
import time
from random import choice


def schedule_jitter():
    # Unseeded module-level draw: flagged.
    return random.random()


def pick_victim(items):
    # `from random import choice` alias: resolved back to random.choice.
    return choice(items)


def stamp():
    # Wall clock in a simulation package: flagged.
    return time.time()


def identity_key(obj):
    # Process-specific hash: flagged.
    return hash(id(obj))


def seeded_ok(seed):
    # Explicitly seeded generator: allowed.
    rng = random.Random(seed)
    return rng.random()
