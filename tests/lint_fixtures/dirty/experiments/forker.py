"""R10 positive fixture: signal-hygienic entry that keeps the inherited fd."""

import multiprocessing
import signal


def _entry(job, listen_fd):
    # BUG SHAPE: resets signals but never closes the inherited listening
    # fd — a worker outliving a SIGKILLed server keeps the port bound.
    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    return job


def launch(job, listen_fd):
    proc = multiprocessing.Process(target=_entry, args=(job, listen_fd))
    proc.start()
    return proc
