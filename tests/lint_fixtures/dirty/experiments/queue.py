"""R7 positive fixtures: journal-first completion and a silent quarantine."""


def complete(journal, store, key, digest):
    # BUG SHAPE: journals completion before the store write — a crash
    # between the two replays as a done job with no stored bytes.
    journal.append({"event": "job_completed", "key": key})
    store.put(key, digest)


def quarantine_job(state, key):
    # BUG SHAPE: the quarantine decision never reaches the journal, so a
    # crash-replay silently reverts the job to its previous state.
    state[key] = "quarantined"
