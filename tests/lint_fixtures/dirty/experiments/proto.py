"""R8 positive fixtures: every drift direction on one tiny protocol.

The inventory declares ``ping`` and ``fetch``; the dispatcher handles
``ping`` plus an undeclared ``legacy`` verb and has no unknown-verb
fallback; the client pings without inspecting structured errors and
also speaks the undeclared ``legacy`` verb; nobody ever sends ``fetch``.
"""

VERBS = ("ping", "fetch")


def dispatch(verb, payload):
    # BUG SHAPES: handles an undeclared verb, misses 'fetch', and an
    # unknown verb falls through as None instead of a structured error.
    if verb == "ping":
        return {"ok": True, "pong": True}
    if verb == "legacy":
        return {"ok": True, "payload": payload}
    return None


class Client:
    def request(self, verb, **fields):
        return {"ok": True}

    def ping(self):
        # BUG SHAPE: a structured rejection surfaces as a KeyError.
        return self.request("ping")["pong"]

    def legacy(self):
        # BUG SHAPE: speaks a verb the inventory never declared.
        response = self.request("legacy")
        if not response.get("ok"):
            raise RuntimeError(response.get("error"))
        return response
