"""R4 positive fixtures: a blocked loop and an unhygienic fork target."""

import asyncio
import time
from multiprocessing import Process


async def handle_client(reader, writer):
    # BUG SHAPE: stalls every connection on the loop.
    time.sleep(1.0)
    await writer.drain()


def _worker_entry(job):
    # BUG SHAPE: inherits the server's wakeup fd and signal handlers.
    return job


def spawn(job):
    proc = Process(target=_worker_entry, args=(job,))
    proc.start()
    return proc
