"""R3 positive fixtures: bare durable writes outside the atomic helpers."""

import json


def save_digest(path, digest):
    # BUG SHAPE: a crash mid-dump leaves a torn JSON file.
    with open(path, "w") as handle:
        json.dump(digest, handle)


def save_plan(path, text):
    # BUG SHAPE: Path.write_text truncates before it writes.
    path.write_text(text)
