"""R9 positive fixtures: bare acquisitions with no structural release."""

import socket
from multiprocessing import Pool


def probe(host, port):
    # BUG SHAPE: an exception after connect leaks the socket fd.
    sock = socket.create_connection((host, port))
    sock.sendall(b"ping\n")
    data = sock.recv(16)
    sock.close()
    return data


def fan_out(jobs):
    # BUG SHAPE: a failing map leaks the worker pool.
    pool = Pool(processes=4)
    results = pool.map(len, jobs)
    pool.terminate()
    return results
