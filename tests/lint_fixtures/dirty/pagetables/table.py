"""R2 positive fixture: owner mutates without invalidating its cache."""


class WalkCache:
    def __init__(self):
        self.entries = {}

    def invalidate(self, key):
        self.entries.pop(key, None)

    def lookup(self, key):
        return self.entries.get(key)


class Table:
    def __init__(self):
        self.cache = WalkCache()
        self.mappings = {}

    def remove_mapping(self, key):
        # BUG SHAPE: the owned WalkCache keeps serving the dead mapping.
        self.mappings.pop(key, None)

    def lookup(self, key):
        return self.cache.lookup(key) or self.mappings.get(key)
