"""R2 broadcast-check positive fixture plus a pragma-suppressed sibling."""


class Kernel:
    def __init__(self):
        self.mappings = {}

    def munmap(self, vma):
        # BUG SHAPE: no tlb_shootdown / invalidate / version bump reachable.
        self.mappings.pop(vma, None)


class Bookkeeper:
    def __init__(self):
        self.mappings = {}

    # lint-allow: R2 caller broadcasts the shootdown (fixture rationale)
    def munmap(self, vma):
        self.mappings.pop(vma, None)
