"""R1 negative fixtures: the sanctioned ways to draw and to time."""

import random
import time


def seeded_draw(seed):
    rng = random.Random(seed)
    return rng.random()


def host_cost():
    # perf_counter is the sanctioned host clock (host_seconds metric).
    return time.perf_counter()


def stable_key(obj):
    return hash((obj.pid, obj.vpn))
