"""R5 negative fixtures: symmetric engine pair, HOST_ONLY_KEYS exemption."""

HOST_ONLY_KEYS = ("host_seconds",)


class Engine:
    def __init__(self, counters):
        self.counters = counters
        self._c_steps = self.counters.hot("steps")

    def execute(self, ops):
        for _ in ops:
            self._c_steps[0] += 1
            self.counters.add("ops_retired")

    def execute_batch(self, ops):
        self._c_steps[0] += len(ops)
        self.counters.add("ops_retired")
        # Host-only cost counter: exempt from the pairing requirement.
        self.counters.add("host_seconds")


def build_report(counters):
    return {"retired": counters.get("ops_retired")}
