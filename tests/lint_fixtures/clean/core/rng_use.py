"""R6 negative fixtures: derived, forked, opaque and pragma'd seeds."""

from repro.common.rng import DeterministicRNG


def config_stream(config):
    # Derived from the experiment identity: allowed.
    return DeterministicRNG(seed=config.seed)


def forked_stream(rng, index):
    # A forked child stream: allowed (fork is a seed-chain operation).
    return DeterministicRNG(seed=rng.fork(index).snapshot_seed)


def opaque_stream(value):
    # Opaque provenance: a name-based pass cannot judge it; allowed.
    return DeterministicRNG(seed=value)


def documented_fallback():
    # lint-allow: R6 fixture rationale: fixed fallback is model identity
    return DeterministicRNG(seed=3)
