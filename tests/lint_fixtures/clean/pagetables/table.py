"""R2 negative fixture: every mutator reaches its cache invalidation."""


class WalkCache:
    def __init__(self):
        self.entries = {}

    def invalidate(self, key):
        self.entries.pop(key, None)

    def lookup(self, key):
        return self.entries.get(key)


class Table:
    def __init__(self):
        self.cache = WalkCache()
        self.mappings = {}

    def remove_mapping(self, key):
        self.mappings.pop(key, None)
        self.cache.invalidate(key)

    def remove_all(self):
        # Rebuilding the cache outright counts as a flush.
        self.mappings = {}
        self.cache = WalkCache()

    def lookup(self, key):
        return self.cache.lookup(key) or self.mappings.get(key)
