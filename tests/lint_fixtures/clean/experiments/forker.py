"""R10 negative fixture: full fork hygiene including the inherited fd."""

import multiprocessing
import os
import signal


def _entry(job, listen_fd):
    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.close(listen_fd)
    return job


def launch(job, listen_fd):
    proc = multiprocessing.Process(target=_entry, args=(job, listen_fd))
    proc.start()
    return proc
