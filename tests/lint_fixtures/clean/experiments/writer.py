"""R3 negative fixtures: inlined tmp+os.replace idiom and read-only opens."""

import os


def save_digest(path, payload):
    # The inlined atomic idiom: the bare open targets the temp file and
    # os.replace in the same function publishes it.
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        handle.write(payload)
    os.replace(tmp, path)


def load_digest(path):
    with open(path) as handle:
        return handle.read()
