"""R4 negative fixtures: async-native waits and a hygienic fork target."""

import asyncio
import signal
from multiprocessing import Process


async def handle_client(reader, writer):
    await asyncio.sleep(1.0)
    await writer.drain()


def _worker_entry(job):
    # Fork hygiene: detach the parent's wakeup fd, restore dispositions.
    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    return job


def spawn(job):
    proc = Process(target=_worker_entry, args=(job,))
    proc.start()
    return proc
