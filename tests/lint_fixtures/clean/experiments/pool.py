"""R9 negative fixtures: every sanctioned release shape."""

import socket
from multiprocessing import Pool


def probe(host, port):
    # try/finally guard: released on every exit.
    sock = socket.create_connection((host, port))
    try:
        sock.sendall(b"ping\n")
        return sock.recv(16)
    finally:
        sock.close()


def fan_out(jobs):
    # Context manager owns the release.
    with Pool(processes=4) as pool:
        return pool.map(len, jobs)


def open_channel(host, port):
    # Ownership transfers to the caller.
    sock = socket.create_connection((host, port))
    return sock


class Transport:
    def __init__(self, host, port):
        # Escapes into owner state; close() owns the release.
        self.sock = socket.create_connection((host, port))

    def close(self):
        self.sock.close()
