"""R7 negative fixtures: store-first completion, journaled quarantine."""


def complete(journal, store, key, digest):
    # Store first, then journal: a crash between the two leaves an
    # unreferenced store object the next gc sweep collects.
    store.put(key, digest)
    journal.append({"event": "job_completed", "key": key})


def quarantine_job(journal, state, key):
    state[key] = "quarantined"
    journal.append({"event": "job_quarantined", "key": key})
