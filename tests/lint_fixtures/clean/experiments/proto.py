"""R8 negative fixtures: a symmetric verb surface with error paths."""

ERROR_UNKNOWN_VERB = "unknown_verb"

VERBS = ("ping",)


def dispatch(verb, payload):
    if verb == "ping":
        return {"ok": True, "pong": True}
    return {"ok": False, "error": ERROR_UNKNOWN_VERB}


class Client:
    def request(self, verb, **fields):
        return {"ok": True}

    def ping(self):
        response = self.request("ping")
        if not response.get("ok"):
            raise RuntimeError(response.get("error"))
        return bool(response.get("pong"))
