"""R2 broadcast-check negative fixtures: shootdown call and version bump."""


class Kernel:
    def __init__(self):
        self.mappings = {}
        self.version = 0

    def tlb_shootdown(self, vma):
        pass

    def munmap(self, vma):
        self.mappings.pop(vma, None)
        self.tlb_shootdown(vma)

    def remove_page(self, vpn):
        # The versioned-invalidation contract the VPN cache watches.
        self.mappings.pop(vpn, None)
        self.version += 1

    def reclaim(self, count):
        # Transitive witness: reaches the shootdown through remove_page.
        for vpn in list(self.mappings)[:count]:
            self.remove_page(vpn)
