"""Tests for the invariant lint (``repro.analysis.lint``).

Each rule gets a positive (dirty fixture tree) and a negative (clean
fixture tree) case, the baseline workflow is exercised end-to-end
through the real CLI entry point, and two sensitivity tests run against
mutated copies of *real* source files — deleting the RMM range-lookaside
invalidation that PR 4 fixed, and deleting the cross-module edge that
covers a caller-holds-contract mutator — so the rules are proven against
the real bugs, not just toy fixtures.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.lint import (
    AsyncSafetyRule,
    DeterminismRule,
    DurabilityRule,
    ForkHygieneRule,
    InvalidationRule,
    JournalOrderingRule,
    ParitySurfaceRule,
    ProtocolSymmetryRule,
    RepoIndex,
    ResourceLifecycleRule,
    SeedFlowRule,
    default_rules,
    load_baseline,
    run_rules,
    save_baseline,
    split_findings,
)
from repro.analysis.lint.__main__ import PACKAGE_ROOT, main

FIXTURES = Path(__file__).parent / "lint_fixtures"
DIRTY = FIXTURES / "dirty"
CLEAN = FIXTURES / "clean"
XMODULE = FIXTURES / "xmodule"


def lint_tree(root, rule):
    """Run one rule over a fixture tree; returns (findings, suppressed)."""
    report = run_rules(RepoIndex.build(root), [rule()])
    return report.findings, report.suppressed


def keys(findings):
    return {(f.rule, f.path, f.symbol, f.detail) for f in findings}


# --------------------------------------------------------------------- #
# R1 determinism
# --------------------------------------------------------------------- #
def test_r1_flags_every_violation_shape():
    findings, _ = lint_tree(DIRTY, DeterminismRule)
    got = keys(findings)
    assert ("R1", "core/model.py", "schedule_jitter", "random.random") in got
    assert ("R1", "core/model.py", "pick_victim", "random.choice") in got
    assert ("R1", "core/model.py", "stamp", "time.time") in got
    assert ("R1", "core/model.py", "identity_key", "hash(id())") in got
    # The seeded constructor is never flagged.
    assert not any(f.symbol == "seeded_ok" for f in findings)


def test_r1_clean_tree_is_clean():
    findings, _ = lint_tree(CLEAN, DeterminismRule)
    assert findings == []


# --------------------------------------------------------------------- #
# R2 invalidation
# --------------------------------------------------------------------- #
def test_r2_owned_cache_and_broadcast_positives():
    findings, suppressed = lint_tree(DIRTY, InvalidationRule)
    got = keys(findings)
    assert ("R2", "pagetables/table.py", "Table.remove_mapping",
            "stale-cache:cache") in got
    assert ("R2", "mimicos/kernel.py", "Kernel.munmap", "no-shootdown") in got
    # The pragma-annotated sibling is suppressed, not reported.
    assert any(f.symbol == "Bookkeeper.munmap" for f in suppressed)
    assert not any(f.symbol == "Bookkeeper.munmap" for f in findings)


def test_r2_clean_tree_accepts_all_witness_shapes():
    # Direct call, transitive call, version bump, and cache rebuild.
    findings, _ = lint_tree(CLEAN, InvalidationRule)
    assert findings == []


def test_r2_detects_removed_rmm_invalidation(tmp_path):
    """Deleting the PR 4 RLB invalidation from the real source fires R2."""
    source = (PACKAGE_ROOT / "pagetables" / "rmm.py").read_text()
    assert "self.rlb.invalidate(entry.virtual_start)" in source
    target = tmp_path / "pagetables" / "rmm.py"
    target.parent.mkdir(parents=True)

    # Unmodified copy: clean.
    target.write_text(source)
    findings, _ = lint_tree(tmp_path, InvalidationRule)
    assert not any(f.symbol.endswith("_remove_structure") for f in findings)

    # Re-introduce the bug: the mutation no longer reaches the RLB.
    target.write_text(source.replace(
        "self.rlb.invalidate(entry.virtual_start)", "pass"))
    findings, _ = lint_tree(tmp_path, InvalidationRule)
    hits = [f for f in findings if f.symbol.endswith("_remove_structure")]
    assert hits and hits[0].rule == "R2"
    assert "rlb" in hits[0].detail


# --------------------------------------------------------------------- #
# R3 durability
# --------------------------------------------------------------------- #
def test_r3_flags_bare_writes():
    findings, _ = lint_tree(DIRTY, DurabilityRule)
    got = keys(findings)
    assert ("R3", "experiments/writer.py", "save_digest", "open-write") in got
    assert ("R3", "experiments/writer.py", "save_plan", "write_text") in got


def test_r3_accepts_inlined_replace_and_reads():
    findings, _ = lint_tree(CLEAN, DurabilityRule)
    assert findings == []


# --------------------------------------------------------------------- #
# R4 async/fork safety
# --------------------------------------------------------------------- #
def test_r4_flags_blocking_call_and_fork_hygiene():
    findings, _ = lint_tree(DIRTY, AsyncSafetyRule)
    got = keys(findings)
    assert ("R4", "experiments/server.py", "handle_client",
            "blocking:time.sleep") in got
    assert ("R4", "experiments/server.py", "_worker_entry",
            "fork-hygiene:signal.set_wakeup_fd,signal.signal") in got


def test_r4_clean_tree_is_clean():
    findings, _ = lint_tree(CLEAN, AsyncSafetyRule)
    assert findings == []


# --------------------------------------------------------------------- #
# R5 parity surface
# --------------------------------------------------------------------- #
def test_r5_flags_orphan_read_and_asymmetric_pair():
    findings, _ = lint_tree(DIRTY, ParitySurfaceRule)
    got = keys(findings)
    assert ("R5", "core/engine.py", "build_report",
            "orphan:page_walks_typo") in got
    assert ("R5", "core/engine.py", "Engine.execute_batch",
            "pair:ops_retired") in got


def test_r5_clean_tree_honours_host_only_keys():
    # execute_batch touches host_seconds extra, exempted by HOST_ONLY_KEYS.
    findings, _ = lint_tree(CLEAN, ParitySurfaceRule)
    assert findings == []


# --------------------------------------------------------------------- #
# Whole-program graph: the two-module invalidation chain
# --------------------------------------------------------------------- #
def test_xmodule_chain_passes_whole_program_but_not_intra_module():
    """The caller-holds-contract shape the three deleted pragmas covered.

    Module A's mutator has no witness of its own; module B's kernel
    broadcasts the shootdown and delegates across the import boundary.
    The intra-module graph cannot see the edge (the PR 9 blind spot);
    the whole-program graph proves the coverage.
    """
    index = RepoIndex.build(XMODULE)
    # The intra-module graph has no Kernel.munmap -> Bookkeeper.munmap
    # edge; the whole-program graph does.
    intra = index.call_graph("mimicos/kernel.py")["Kernel.munmap"]
    assert not any("Bookkeeper" in callee for callee in intra)
    global_edges = index.global_graph()[("mimicos/kernel.py", "Kernel.munmap")]
    assert ("mimicos/bookkeep.py", "Bookkeeper.munmap") in global_edges
    # And the rule accepts the chain with no pragma anywhere.
    findings, suppressed = lint_tree(XMODULE, InvalidationRule)
    assert findings == [] and suppressed == []


def test_xmodule_chain_sensitivity_deleting_the_cross_module_edge(tmp_path):
    """Severing the delegation edge re-exposes the uncovered mutator."""
    root = tmp_path / "tree"
    shutil.copytree(XMODULE, root)
    kernel = root / "mimicos" / "kernel.py"
    source = kernel.read_text()
    assert "self.books.munmap(vma)" in source
    kernel.write_text(source.replace("self.books.munmap(vma)", "pass"))
    findings, _ = lint_tree(root, InvalidationRule)
    assert ("R2", "mimicos/bookkeep.py", "Bookkeeper.munmap",
            "no-shootdown") in keys(findings)


def test_real_tree_proves_the_deleted_caller_holds_contract_pragmas():
    """The three PR 9 pragma sites are provably clean, pragma-free.

    ``VMAManager.munmap`` ← ``Process.munmap`` ← ``MimicOS.munmap``
    (which broadcasts), and ``SwapSubsystem.swap_out`` ← the kernel
    reclaim sites: whole-program caller coverage, no annotations.
    """
    for relpath in ("mimicos/vma.py", "mimicos/process.py",
                    "mimicos/swap.py"):
        assert "lint-allow: R2" not in (PACKAGE_ROOT / relpath).read_text()
    index = RepoIndex.build(PACKAGE_ROOT)
    report = run_rules(index, [InvalidationRule()])
    mutators = {f.symbol for f in report.findings + report.suppressed}
    assert "VMAManager.munmap" not in mutators
    assert "Process.munmap" not in mutators
    assert "SwapSubsystem.swap_out" not in mutators


# --------------------------------------------------------------------- #
# R6 seed flow
# --------------------------------------------------------------------- #
def test_r6_flags_missing_and_literal_seeds():
    findings, _ = lint_tree(DIRTY, SeedFlowRule)
    got = keys(findings)
    assert ("R6", "core/rng_use.py", "default_stream",
            "seed-missing:DeterministicRNG") in got
    assert ("R6", "core/rng_use.py", "baked_stream",
            "seed-literal:DeterministicRNG=42") in got


def test_r6_accepts_derived_opaque_and_pragmad_seeds():
    findings, suppressed = lint_tree(CLEAN, SeedFlowRule)
    assert findings == []
    # The documented fallback is suppressed by its pragma, not silent.
    assert any(f.symbol == "documented_fallback" for f in suppressed)


# --------------------------------------------------------------------- #
# R7 journal/store ordering
# --------------------------------------------------------------------- #
def test_r7_flags_journal_first_and_silent_quarantine():
    findings, _ = lint_tree(DIRTY, JournalOrderingRule)
    got = keys(findings)
    assert ("R7", "experiments/queue.py", "complete",
            "journal-before-store") in got
    assert ("R7", "experiments/queue.py", "quarantine_job",
            "unjournaled-failure-exit") in got


def test_r7_accepts_store_first_and_journaled_quarantine():
    findings, _ = lint_tree(CLEAN, JournalOrderingRule)
    assert findings == []


# --------------------------------------------------------------------- #
# R8 protocol symmetry
# --------------------------------------------------------------------- #
def test_r8_flags_every_drift_direction():
    findings, _ = lint_tree(DIRTY, ProtocolSymmetryRule)
    got = keys(findings)
    assert ("R8", "experiments/proto.py", "VERBS",
            "no-server-handler:fetch") in got
    assert ("R8", "experiments/proto.py", "VERBS",
            "no-client-method:fetch") in got
    assert ("R8", "experiments/proto.py", "dispatch",
            "undeclared-verb:legacy") in got
    assert ("R8", "experiments/proto.py", "Client.legacy",
            "undeclared-verb:legacy") in got
    assert ("R8", "experiments/proto.py", "Client.ping",
            "no-error-path:ping") in got
    assert ("R8", "experiments/proto.py", "dispatch",
            "no-unknown-verb-fallback") in got


def test_r8_clean_surface_is_symmetric():
    findings, _ = lint_tree(CLEAN, ProtocolSymmetryRule)
    assert findings == []


# --------------------------------------------------------------------- #
# R9 resource lifecycle
# --------------------------------------------------------------------- #
def test_r9_flags_bare_acquisitions():
    findings, _ = lint_tree(DIRTY, ResourceLifecycleRule)
    got = keys(findings)
    assert ("R9", "experiments/pool.py", "probe",
            "leak:socket.create_connection") in got
    assert ("R9", "experiments/pool.py", "fan_out",
            "leak:multiprocessing.Pool") in got


def test_r9_accepts_every_release_shape():
    # with, try/finally, return-transfer and self-escape all pass.
    findings, _ = lint_tree(CLEAN, ResourceLifecycleRule)
    assert findings == []


# --------------------------------------------------------------------- #
# R10 fork hygiene (whole-program)
# --------------------------------------------------------------------- #
def test_r10_flags_unhygienic_entry_and_kept_fd():
    findings, _ = lint_tree(DIRTY, ForkHygieneRule)
    got = keys(findings)
    # Same entry R4 flags intra-module, now proven from the fork site.
    assert ("R10", "experiments/server.py", "spawn",
            "fork-hygiene:_worker_entry:signal.set_wakeup_fd,signal.signal"
            ) in got
    # Signal-hygienic entry that keeps the inherited listening fd.
    assert ("R10", "experiments/forker.py", "launch",
            "fork-fd-close:_entry") in got


def test_r10_clean_tree_is_clean():
    findings, _ = lint_tree(CLEAN, ForkHygieneRule)
    assert findings == []


# --------------------------------------------------------------------- #
# CLI surface added in PR 10
# --------------------------------------------------------------------- #
def test_rules_csv_selection(tmp_path):
    out = tmp_path / "report.json"
    main(["--root", str(DIRTY), "--no-baseline", "--rules", "R3,R6",
          "--json", str(out)])
    payload = json.loads(out.read_text())
    assert set(payload["by_rule"]) == {"R3", "R6"}
    assert payload["rules_run"] == ["R3", "R6"]


def test_rules_csv_unknown_id_is_usage_error():
    assert main(["--root", str(DIRTY), "--no-baseline",
                 "--rules", "R3,R99"]) == 2


def test_format_json_emits_machine_report(capsys):
    code = main(["--root", str(CLEAN), "--no-baseline", "--format", "json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == 0
    assert payload["rules_run"] == [r.rule_id for r in default_rules()]
    assert payload["wall_seconds"] >= 0
    assert payload["new_findings"] == []


def test_summary_reports_wall_clock_and_per_rule_counts(capsys):
    main(["--root", str(DIRTY), "--no-baseline"])
    out = capsys.readouterr().out
    assert "[per-rule " in out and "R3:2" in out
    assert out.rstrip().endswith("s")  # "... in 0.12s"


# --------------------------------------------------------------------- #
# Baseline workflow (through the real CLI)
# --------------------------------------------------------------------- #
def test_baseline_round_trip(tmp_path):
    root = tmp_path / "tree"
    shutil.copytree(DIRTY, root)
    baseline = tmp_path / "baseline.json"

    # New findings, no baseline: fail.
    assert main(["--root", str(root), "--baseline", str(baseline)]) == 1

    # Grandfather them; the same scan is now clean.
    assert main(["--root", str(root), "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    assert main(["--root", str(root), "--baseline", str(baseline)]) == 0

    # Baseline keys are line-independent: shifting every finding down a
    # few lines must not churn the grandfather list.
    model = root / "core" / "model.py"
    model.write_text("# shifted\n# shifted\n# shifted\n" + model.read_text())
    assert main(["--root", str(root), "--baseline", str(baseline)]) == 0

    # Remove the baseline: the findings are new again.
    baseline.unlink()
    assert main(["--root", str(root), "--baseline", str(baseline)]) == 1


def test_baseline_reports_stale_entries(tmp_path):
    root = tmp_path / "tree"
    shutil.copytree(DIRTY, root)
    baseline = tmp_path / "baseline.json"
    assert main(["--root", str(root), "--baseline", str(baseline),
                 "--update-baseline"]) == 0

    # Fix one violation: its baseline entry goes stale, exit stays 0.
    shutil.copy(CLEAN / "experiments" / "writer.py",
                root / "experiments" / "writer.py")
    out = tmp_path / "report.json"
    assert main(["--root", str(root), "--baseline", str(baseline),
                 "--json", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["findings"] == 0
    assert payload["stale_baseline_entries"] == 2  # both writer.py findings


def test_baseline_split_round_trips_through_disk(tmp_path):
    report = run_rules(RepoIndex.build(DIRTY), default_rules())
    path = tmp_path / "baseline.json"
    save_baseline(path, report.findings)
    loaded = load_baseline(path)
    new, baselined, stale = split_findings(report.findings, loaded)
    assert new == [] and stale == []
    assert len(baselined) == len(report.findings)


def test_unknown_rule_id_is_a_usage_error(tmp_path):
    assert main(["--root", str(DIRTY), "--no-baseline", "--rule", "R99"]) == 2


def test_rule_filter_runs_only_selected_rule(tmp_path):
    out = tmp_path / "report.json"
    main(["--root", str(DIRTY), "--no-baseline", "--rule", "R3",
          "--json", str(out)])
    payload = json.loads(out.read_text())
    assert set(payload["by_rule"]) == {"R3"}


# --------------------------------------------------------------------- #
# The repo itself
# --------------------------------------------------------------------- #
def test_repo_lints_clean_against_checked_in_baseline():
    """The tree at HEAD has no non-baselined findings (the CI contract)."""
    assert main([]) == 0


def test_all_rules_have_distinct_ids_and_descriptions():
    rules = default_rules()
    assert len({rule.rule_id for rule in rules}) == len(rules) == 10
    assert all(rule.description for rule in rules)
