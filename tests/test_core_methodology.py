"""Tests for instructions, channels, instrumentation, the core model and couplings."""

import pytest

from repro.common.addresses import MB, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.config import CoreConfig, PageTableConfig, SimulationConfig
from repro.common.kernelops import KernelOp, KernelRoutineTrace
from repro.core.channels import (
    FunctionalChannel,
    InstructionStreamChannel,
    PageFaultRequest,
    PageFaultResponse,
)
from repro.core.cpu import CoreModel
from repro.core.instructions import Instruction, InstructionKind, InstructionStream
from repro.core.instrumentation import InstrumentationTool
from repro.core.modes import (
    EmulationCoupling,
    FixedLatencyPageTable,
    FullSystemCoupling,
    ImitationCoupling,
    ReferenceCoupling,
    build_coupling,
)
from repro.memhier.memory_system import MemoryHierarchy
from repro.mimicos.kernel import MimicOS
from repro.mmu.mmu import MMU
from repro.mmu.tlb import TLBHierarchy
from repro.pagetables.radix import RadixPageTable
from tests.conftest import FlatMemory, tiny_mimicos_config, tiny_system_config


class TestInstructions:
    def test_memory_predicates(self):
        load = Instruction(InstructionKind.LOAD, memory_address=0x100)
        store = Instruction(InstructionKind.STORE, memory_address=0x100)
        alu = Instruction(InstructionKind.ALU)
        assert load.is_memory and not load.is_write
        assert store.is_memory and store.is_write
        assert not alu.is_memory

    def test_stream_accounting(self):
        stream = InstructionStream("s")
        stream.append(Instruction(InstructionKind.ALU))
        stream.extend([Instruction(InstructionKind.LOAD, memory_address=0x0),
                       Instruction(InstructionKind.STORE, memory_address=0x40)])
        assert len(stream) == 3
        assert stream.memory_instructions == 2


class TestKernelTrace:
    def test_trace_accumulates_ops(self):
        trace = KernelRoutineTrace("do_page_fault")
        op = trace.new_op("buddy_alloc", work_units=3)
        op.touch(0x1000, is_write=True)
        assert trace.total_work_units == 3
        assert trace.total_memory_touches == 1
        assert list(trace.iter_memory_touches()) == [(0x1000, True)]

    def test_extend_inlines_callee(self):
        outer = KernelRoutineTrace("outer")
        inner = KernelRoutineTrace("inner")
        inner.new_op("child", work_units=2)
        inner.disk_latency_cycles = 50
        outer.extend(inner)
        assert outer.total_work_units == 2
        assert outer.disk_latency_cycles == 50


class TestChannels:
    def test_functional_channel_roundtrip(self):
        channel = FunctionalChannel()
        request = PageFaultRequest(pid=1, virtual_address=0x1000)
        sequence = channel.send_request(request)
        received = channel.receive_request()
        assert received is request
        channel.send_response(PageFaultResponse(sequence=sequence, handled=True))
        response = channel.receive_response(sequence)
        assert response.handled
        assert channel.receive_response(sequence) is None

    def test_functional_channel_fifo_order(self):
        channel = FunctionalChannel()
        first = PageFaultRequest(pid=1, virtual_address=1)
        second = PageFaultRequest(pid=1, virtual_address=2)
        channel.send_request(first)
        channel.send_request(second)
        assert channel.receive_request() is first
        assert channel.receive_request() is second
        assert channel.receive_request() is None

    def test_instruction_channel_appends_magic_terminator(self):
        channel = InstructionStreamChannel()
        stream = InstructionStream("pf")
        stream.append(Instruction(InstructionKind.ALU))
        channel.push(stream)
        delivered = channel.pop()
        assert delivered.instructions[-1].kind == InstructionKind.MAGIC
        assert channel.total_instructions == 1
        assert channel.pop() is None


class TestInstrumentation:
    def test_instruction_count_scales_with_work(self):
        tool = InstrumentationTool()
        small = KernelRoutineTrace("f")
        small.new_op("buddy_alloc", work_units=1)
        large = KernelRoutineTrace("f")
        large.new_op("buddy_alloc", work_units=50)
        assert len(tool.expand(large)) > len(tool.expand(small))

    def test_memory_touches_become_memory_instructions(self):
        tool = InstrumentationTool()
        trace = KernelRoutineTrace("f")
        op = trace.new_op("pt_update", work_units=2)
        op.touch(0x1000, is_write=True)
        op.touch(0x2000, is_write=False)
        stream = tool.expand(trace)
        memory_ops = [i for i in stream if i.is_memory]
        assert len(memory_ops) == 2
        assert {i.memory_address for i in memory_ops} == {0x1000, 0x2000}
        assert all(i.is_kernel for i in stream)

    def test_bulk_zeroing_stays_compact_but_expensive(self):
        tool = InstrumentationTool()
        trace = KernelRoutineTrace("f")
        op = trace.new_op("zero_page", work_units=32768)
        op.touch(0x1000, is_write=True)
        stream = tool.expand(trace)
        assert len(stream) < 100
        assert any(i.repeat >= 32768 for i in stream)

    def test_pathological_op_capped(self):
        tool = InstrumentationTool()
        trace = KernelRoutineTrace("f")
        trace.new_op("ech_resize", work_units=10 ** 6)
        stream = tool.expand(trace)
        assert len(stream) <= tool.MAX_COMPUTE_PER_OP + 10

    def test_full_system_factor_inflates_streams(self):
        trace = KernelRoutineTrace("f")
        trace.new_op("buddy_alloc", work_units=10)
        normal = InstrumentationTool().expand(trace)
        inflated = InstrumentationTool(full_system_factor=3.0).expand(trace)
        assert len(inflated) > len(normal)

    def test_memory_overhead_factors(self):
        assert InstrumentationTool("online").host_memory_overhead_factor() > \
            InstrumentationTool("offline").host_memory_overhead_factor()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            InstrumentationTool("telepathy")


def build_core(config=None):
    system = tiny_system_config()
    memory = MemoryHierarchy.from_system_config(system)
    tlbs = TLBHierarchy(system.l1i_tlb, system.l1d_tlb_4k, system.l1d_tlb_2m, system.l2_tlb)
    mmu = MMU(tlbs, memory)
    table = RadixPageTable()
    mmu.set_context(1, table)
    core = CoreModel(config or CoreConfig(), mmu, memory)
    return core, mmu, table, memory


class TestCoreModel:
    def test_non_memory_instruction_costs_base_cpi(self):
        core, _, _, _ = build_core()
        consumed = core.execute(Instruction(InstructionKind.ALU))
        assert consumed == pytest.approx(core.config.base_cpi)
        assert core.instructions == 1

    def test_memory_instruction_adds_stalls(self):
        core, _, table, _ = build_core()
        table.insert(0x1000, 0xA000, PAGE_SIZE_4K)
        consumed = core.execute(Instruction(InstructionKind.LOAD, memory_address=0x1000))
        assert consumed > core.config.base_cpi
        assert core.breakdown.translation_cycles > 0

    def test_ipc_decreases_with_memory_intensity(self):
        compute_core, _, _, _ = build_core()
        for _ in range(200):
            compute_core.execute(Instruction(InstructionKind.ALU))
        memory_core, _, table, _ = build_core()
        for index in range(200):
            address = 0x1000 + index * PAGE_SIZE_4K
            table.insert(address, 0xA000 + index * PAGE_SIZE_4K, PAGE_SIZE_4K)
            memory_core.execute(Instruction(InstructionKind.LOAD, memory_address=address))
        assert memory_core.ipc < compute_core.ipc

    def test_kernel_stream_does_not_advance_core_cycles(self):
        core, _, _, _ = build_core()
        stream = InstructionStream("k")
        stream.extend([Instruction(InstructionKind.ALU, is_kernel=True) for _ in range(10)])
        consumed = core.execute_kernel_stream(stream)
        assert consumed > 0
        assert core.cycles == 0
        assert core.kernel_instructions == 10
        assert core.kernel_instruction_fraction() == 1.0

    def test_kernel_memory_accesses_pollute_caches(self):
        core, _, _, memory = build_core()
        stream = InstructionStream("k")
        stream.append(Instruction(InstructionKind.STORE, memory_address=0x9000, is_kernel=True))
        core.execute_kernel_stream(stream)
        assert memory.counters.get("requests_kernel_zero") == 1

    def test_repeat_instruction_charges_per_iteration(self):
        core, _, _, _ = build_core()
        stream = InstructionStream("k")
        stream.append(Instruction(InstructionKind.ALU, is_kernel=True, repeat=1000))
        consumed = core.execute_kernel_stream(stream)
        assert consumed >= 1000

    def test_page_fault_latency_charged_once(self):
        core, mmu, table, _ = build_core()

        def fault(pid, vaddr):
            table.insert(vaddr, 0xC000, PAGE_SIZE_4K)
            return 700, True

        mmu.set_fault_callback(fault)
        core.execute(Instruction(InstructionKind.LOAD, memory_address=0x3000))
        assert core.breakdown.fault_cycles == pytest.approx(700)
        assert core.cycles > 700


def build_kernel_and_core(os_mode="imitation", thp_policy="linux"):
    kernel = MimicOS(tiny_mimicos_config(thp_policy=thp_policy), PageTableConfig())
    core, mmu, table, memory = build_core()
    simulation = SimulationConfig(os_mode=os_mode)
    coupling = build_coupling(simulation, kernel, core)
    return kernel, core, coupling


class TestCouplings:
    def test_build_coupling_factory(self):
        kernel, core, _ = build_kernel_and_core()
        assert isinstance(build_coupling(SimulationConfig(os_mode="imitation"), kernel, core),
                          ImitationCoupling)
        assert isinstance(build_coupling(SimulationConfig(os_mode="emulation"), kernel, core),
                          EmulationCoupling)
        assert isinstance(build_coupling(SimulationConfig(os_mode="full_system"), kernel, core),
                          FullSystemCoupling)
        assert isinstance(build_coupling(SimulationConfig(os_mode="reference"), kernel, core),
                          ReferenceCoupling)
        with pytest.raises(ValueError):
            build_coupling(SimulationConfig(os_mode="psychic"), kernel, core)

    def test_imitation_injects_kernel_instructions(self):
        kernel, core, coupling = build_kernel_and_core("imitation")
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 4 * MB)
        latency, handled = coupling.handle_page_fault(process.pid, vma.start)
        assert handled
        assert latency > 0
        assert core.kernel_instructions > 0
        assert coupling.kernel_instructions_injected() > 0
        assert coupling.fault_latency.count == 1

    def test_emulation_charges_fixed_latency_without_injection(self):
        kernel, core, coupling = build_kernel_and_core("emulation")
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 4 * MB)
        latency, handled = coupling.handle_page_fault(process.pid, vma.start)
        assert handled
        assert latency == coupling.simulation_config.fixed_page_fault_latency
        assert core.kernel_instructions == 0

    def test_emulation_latency_is_constant_across_faults(self):
        kernel, core, coupling = build_kernel_and_core("emulation")
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 16 * MB)
        latencies = {coupling.handle_page_fault(process.pid,
                                                vma.start + index * PAGE_SIZE_2M)[0]
                     for index in range(4)}
        assert len(latencies) == 1

    def test_imitation_latency_varies_across_faults(self):
        kernel, core, coupling = build_kernel_and_core("imitation", thp_policy="linux")
        process = kernel.create_process("app")
        huge_vma = kernel.mmap(process, 8 * MB)
        small_vma = kernel.mmap(process, 64 * 1024)
        huge_latency, _ = coupling.handle_page_fault(process.pid, huge_vma.start)
        small_latency, _ = coupling.handle_page_fault(process.pid, small_vma.start)
        assert huge_latency > small_latency * 5

    def test_full_system_is_slower_than_imitation(self):
        kernel_a, core_a, imitation = build_kernel_and_core("imitation")
        kernel_b, core_b, full_system = build_kernel_and_core("full_system")
        process_a = kernel_a.create_process("a")
        process_b = kernel_b.create_process("b")
        vma_a = kernel_a.mmap(process_a, 4 * MB)
        vma_b = kernel_b.mmap(process_b, 4 * MB)
        imitation.handle_page_fault(process_a.pid, vma_a.start)
        full_system.handle_page_fault(process_b.pid, vma_b.start)
        assert core_b.kernel_instructions > core_a.kernel_instructions

    def test_segfault_reported_as_unhandled(self):
        kernel, core, coupling = build_kernel_and_core("imitation")
        process = kernel.create_process("app")
        _, handled = coupling.handle_page_fault(process.pid, 0xDEAD_0000)
        assert not handled

    def test_reference_adds_noise_but_stays_positive(self):
        kernel, core, coupling = build_kernel_and_core("reference")
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 16 * MB)
        latencies = [coupling.handle_page_fault(process.pid, vma.start + i * PAGE_SIZE_2M)[0]
                     for i in range(4)]
        assert all(latency > 0 for latency in latencies)
        assert len(set(latencies)) > 1


class TestFixedLatencyPageTable:
    def test_walk_has_constant_latency_and_no_traffic(self):
        inner = RadixPageTable()
        inner.insert(0x1000, 0xA000, PAGE_SIZE_4K)
        wrapper = FixedLatencyPageTable(inner, fixed_latency=50)
        memory = FlatMemory()
        result = wrapper.walk(0x1000, memory)
        assert result.found
        assert result.latency == 50
        assert result.memory_accesses == 0
        assert memory.accesses == []

    def test_software_interface_delegates(self):
        inner = RadixPageTable()
        wrapper = FixedLatencyPageTable(inner, fixed_latency=50)
        wrapper.insert(0x2000, 0xB000, PAGE_SIZE_4K)
        assert inner.lookup(0x2000) == (0xB000, PAGE_SIZE_4K)
        assert wrapper.lookup(0x2000) == (0xB000, PAGE_SIZE_4K)
        assert wrapper.remove(0x2000)
        assert inner.lookup(0x2000) is None

    def test_walk_miss(self):
        wrapper = FixedLatencyPageTable(RadixPageTable(), fixed_latency=50)
        assert not wrapper.walk(0x5000, FlatMemory()).found
