"""Tier-1 differential parity sampler plus the page-table-zoo smoke tests.

Four families:

* sampled parity matrix — a seeded ~40-point subset of the full lattice
  (every page-table design x workload family x cores x THP/swap toggles)
  must be bit-identical between the batch and legacy engines;
* harness sensitivity — with the kernel's TLB-shootdown wiring disabled the
  harness must *detect* a divergence (a differential harness that cannot
  catch the bug it was built for is worthless);
* stale-translation regression — swapping a page out must make the next
  access fault identically on both engines (the kernel-initiated shootdown
  keeps the TLBs and the VPN translation cache honest);
* zoo smoke — every factory-registered design survives a
  fault-allocate-translate-remove cycle, and the fallback page-table-frame
  allocator can never alias simulated physical memory.
"""

from dataclasses import replace

import pytest

from repro.common.addresses import FALLBACK_FRAME_BASE, GB, MB, PAGE_SIZE_4K, align_down, page_number
from repro.common.config import PageTableConfig
from repro.core.virtuoso import Virtuoso
from repro.mimicos.kernel import MimicOS
from repro.pagetables.base import _BumpFrameAllocator
from repro.pagetables.factory import build_page_table, registered_kinds
from repro.validation.parity import (
    MIN_VIRTUALIZED_SAMPLE,
    DivergenceRecord,
    ParityPoint,
    divergence_of,
    full_lattice,
    run_parity_point,
    sample_lattice,
    virtualized_lattice,
)
from tests.conftest import FlatMemory, tiny_mimicos_config, tiny_system_config

#: Size of the always-on sampled subset (the full lattice is the CLI's job).
SAMPLE_SIZE = 40


class TestLattice:
    def test_full_lattice_covers_every_design_and_toggle(self):
        points = full_lattice()
        kinds = {point.page_table_kind for point in points}
        assert kinds == set(registered_kinds())
        assert {point.cores for point in points} == {1, 2}
        assert {point.thp for point in points} == {True, False}
        assert {point.swap_pressure for point in points} == {True, False}

    def test_sample_is_deterministic_and_covers_every_design(self):
        first = sample_lattice(SAMPLE_SIZE)
        second = sample_lattice(SAMPLE_SIZE)
        assert first == second
        assert len(first) == SAMPLE_SIZE
        assert {p.page_table_kind for p in first} == set(registered_kinds())
        # A different seed picks a different subset (it really is sampling).
        assert sample_lattice(SAMPLE_SIZE, seed=1) != first

    def test_virtualized_axis_covers_guest_and_host_backends(self):
        from repro.pagetables.factory import nested_capable_kinds

        points = virtualized_lattice()
        assert all(point.virtualized for point in points)
        capable = set(nested_capable_kinds())
        # Host-backend sweep (guest radix over every walk-capable host) and
        # guest-backend sweep (every walk-capable guest over a radix host).
        assert {p.page_table_kind for p in points} == capable
        assert {p.guest_kind for p in points} == capable
        # Intermediate-address schemes never reach the nested walker.
        assert "midgard" not in capable and "vbi" not in capable
        # Feature toggles: guest THP off, host swap pressure, multi-core.
        assert any(not p.thp for p in points)
        assert any(p.swap_pressure for p in points)
        assert any(p.cores > 1 for p in points)
        # The virtualization slice is part of the full lattice.
        full = full_lattice()
        assert all(point in full for point in points)

    def test_sample_always_includes_virtualized_points(self):
        for seed in (2025, 1, 77):
            sample = sample_lattice(SAMPLE_SIZE, seed=seed)
            virtualized = [p for p in sample if p.virtualized]
            assert len(virtualized) >= MIN_VIRTUALIZED_SAMPLE, (
                f"seed {seed}: sampled only {len(virtualized)} virtualized "
                f"points, need >= {MIN_VIRTUALIZED_SAMPLE}")


class TestSampledParityMatrix:
    """The always-on gate: no engine divergence anywhere in the sample."""

    @pytest.mark.parametrize("point", sample_lattice(SAMPLE_SIZE),
                             ids=lambda point: point.name)
    def test_point_is_engine_invariant(self, point):
        digest = run_parity_point(point)
        record = divergence_of(digest)
        assert record is None, f"engine divergence: {record}"
        assert digest["fields_compared"] > 50  # a real report, not a stub


class TestHarnessSensitivity:
    def test_detects_divergence_when_shootdown_disabled(self, monkeypatch):
        """Re-create the pre-fix tree (no kernel TLB shootdowns) and demand
        the harness flags the engine divergence it used to hide."""
        monkeypatch.setattr(MimicOS, "register_tlb_listener",
                            lambda self, listener: None)
        digest = run_parity_point(ParityPoint("radix", "llm", thp=True))
        record = divergence_of(digest)
        assert record is not None, (
            "parity harness failed to detect the stale-TLB divergence")
        assert record.diverging_fields > 0
        assert record.field
        # The record is structured: configuration, counter and both values.
        assert record.point == "radix/llm/c1/thp=on/swap=off"
        assert record.legacy_value != record.batch_value
        assert "diverged" in str(record)

    def test_detects_divergence_when_nested_invalidation_disabled(self, monkeypatch):
        """Re-create the pre-fix nested path (stale nested-TLB entries
        survive guest collapses and hypervisor remaps) and demand the
        virtualised guest-collapse point flags the engine divergence: a
        stale nested entry re-fills a 4 KB combined translation that the
        legacy TLB probe order and the batch VPN cache's whole-region 2 MB
        entries then shadow differently."""
        from repro.mmu.mmu import MMU
        from repro.mmu.nested import NestedTranslationUnit

        monkeypatch.setattr(NestedTranslationUnit, "invalidate",
                            lambda self, guest_virtual: None)
        monkeypatch.setattr(NestedTranslationUnit, "flush", lambda self: None)
        monkeypatch.setattr(MMU, "invalidate_nested_translations",
                            lambda self: None)
        point = ParityPoint("radix", "guestmix", virtualized=True)
        digest = run_parity_point(point)
        record = divergence_of(digest)
        assert record is not None, (
            "parity harness failed to detect the stale nested-TLB divergence")
        assert record.point == point.name
        assert record.legacy_value != record.batch_value


def _swap_out_page(system: Virtuoso, pid: int, virtual_base: int) -> None:
    """Do exactly what kswapd reclaim does to one resident 4 KB page:
    swap it out, unmap it and shoot the translation down."""
    kernel = system.kernel
    kernel.swap.swap_out(pid, page_number(virtual_base))
    kernel.processes[pid].page_table.remove(virtual_base)
    kernel.tlb_shootdown(pid, virtual_base)


class TestSwapOutStaleTranslationRegression:
    """A swapped-out page must fault on its next access — on both engines."""

    def run_engine(self, engine: str):
        config = tiny_system_config()
        config = config.with_simulation(replace(config.simulation, engine=engine))
        system = Virtuoso(config, seed=7)
        process = system.create_process("swap-victim")
        vma = system.kernel.mmap(process, 1 * MB)
        system.activate_process(process)
        address = vma.start + 0x1000

        access = (system.mmu.access_data_fast if engine == "batch"
                  else system.mmu.access_data)
        # Fault the page in, then touch it twice more: the second touch is an
        # L1 TLB hit, which on the batch engine records a VPN-cache entry and
        # the third is served by the fast path.
        assert access(address).translation.page_fault
        access(address)
        access(address)
        if engine == "batch":
            assert system.mmu.fast_hits > 0

        _swap_out_page(system, process.pid, align_down(address, PAGE_SIZE_4K))

        outcome = access(address)
        return system, outcome

    def test_next_access_faults_identically_on_both_engines(self):
        legacy_system, legacy_outcome = self.run_engine("legacy")
        batch_system, batch_outcome = self.run_engine("batch")

        # The unmapped page faults again (major: it comes back from swap).
        assert legacy_outcome.translation.page_fault
        assert batch_outcome.translation.page_fault
        assert legacy_system.kernel.swap.counters.get("swap_ins") == 1
        assert batch_system.kernel.swap.counters.get("swap_ins") == 1

        # And every simulated statistic of the sequence is engine-invariant.
        assert legacy_system.mmu.counters.as_dict() == \
            batch_system.mmu.counters.as_dict()
        assert legacy_system.tlbs.stats() == batch_system.tlbs.stats()
        assert legacy_system.coupling.counters.as_dict() == \
            batch_system.coupling.counters.as_dict()

    def test_shootdown_reaches_only_the_matching_context(self):
        """The per-core IPI filter: a shootdown for another pid must leave
        the current context's TLB entries alone."""
        config = tiny_system_config()
        system = Virtuoso(config, seed=7)
        process = system.create_process("current")
        vma = system.kernel.mmap(process, 1 * MB)
        system.activate_process(process)
        address = vma.start + 0x1000
        system.mmu.access_data(address)   # fault in + fill TLBs
        system.mmu.access_data(address)   # L1 hit
        hits_before = system.tlbs.l1d_4k.counters.get("hits")

        system.kernel.tlb_shootdown(process.pid + 999, address)
        system.mmu.access_data(address)
        assert system.tlbs.l1d_4k.counters.get("hits") == hits_before + 1

        system.kernel.tlb_shootdown(process.pid, address)
        outcome = system.mmu.access_data(address)
        assert not outcome.translation.tlb_hit or outcome.translation.walked


class TestPageTableZooSmoke:
    """Every registered design: fault -> allocate -> translate -> remove."""

    @pytest.mark.parametrize("kind", registered_kinds())
    def test_fault_allocate_translate_remove_cycle(self, kind):
        kernel = MimicOS(tiny_mimicos_config(), PageTableConfig(kind=kind))
        process = kernel.create_process(f"zoo-{kind}")
        vma = kernel.mmap(process, 4 * MB)
        address = vma.start + 0x3000

        result = kernel.handle_page_fault(process.pid, address)
        assert not result.segfault
        assert result.page_size >= PAGE_SIZE_4K

        table = process.page_table
        mapping = table.lookup(address)
        assert mapping is not None
        physical_base, page_size = mapping
        functional = table.translate_functional(address)
        assert functional is not None
        assert functional == physical_base + (address - align_down(address, page_size))
        assert page_size in table.active_page_sizes()

        if not table.replaces_tlbs:
            walk = table.walk(address, FlatMemory())
            assert walk.found
            assert walk.physical_base == physical_base
            assert walk.page_size == page_size

        assert table.remove(address)
        assert table.lookup(address) is None
        assert table.translate_functional(address) is None
        if not table.replaces_tlbs:
            assert not table.walk(address, FlatMemory()).found

    @pytest.mark.parametrize("kind", registered_kinds())
    def test_standalone_factory_instantiation(self, kind):
        """No kernel at all: the factory's fallback frame allocator serves
        page-table frames from outside simulated physical memory."""
        table = build_page_table(PageTableConfig(kind=kind),
                                 physical_memory_bytes=1 * GB)
        table.insert(0x4000, 0x7000, PAGE_SIZE_4K)
        assert table.lookup(0x4000) == (align_down(0x7000, PAGE_SIZE_4K), PAGE_SIZE_4K)
        assert table.remove(0x4000)
        assert table.active_page_sizes() == ()


class TestBumpFrameAllocator:
    def test_fallback_frames_sit_above_physical_memory(self):
        allocator = _BumpFrameAllocator(physical_memory_bytes=256 * GB)
        frame = allocator()
        assert frame >= FALLBACK_FRAME_BASE
        assert frame >= 256 * GB
        assert allocator() == frame + PAGE_SIZE_4K

    def test_aliasing_base_is_rejected_at_construction(self):
        with pytest.raises(ValueError, match="alias"):
            _BumpFrameAllocator(base=1 << 30, physical_memory_bytes=4 * GB)
        with pytest.raises(ValueError, match="alias"):
            _BumpFrameAllocator(physical_memory_bytes=(FALLBACK_FRAME_BASE) * 2)
