"""Tests for the THP allocation policies, khugepaged and fragmentation control."""

import pytest

from repro.common.addresses import MB, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.kernelops import KernelRoutineTrace
from repro.common.rng import DeterministicRNG
from repro.mimicos.buddy import ORDER_2M, BuddyAllocator
from repro.mimicos.fragmentation import FragmentationController
from repro.mimicos.khugepaged import Khugepaged
from repro.mimicos.thp import (
    AggressiveReservationTHP,
    BuddyOnlyPolicy,
    ConservativeReservationTHP,
    LinuxTHPPolicy,
    build_thp_policy,
)
from repro.mimicos.vma import VirtualMemoryArea, VMAKind
from repro.pagetables.radix import RadixPageTable
from tests.conftest import tiny_mimicos_config


def make_vma(size=8 * MB, start=0x7F00_0000_0000):
    return VirtualMemoryArea(start=start, end=start + size, kind=VMAKind.ANONYMOUS)


def make_buddy(size=128 * MB):
    return BuddyAllocator(size)


def exhaust_huge_blocks(buddy):
    """Leave the allocator with plenty of 4 KB pages but no free 2 MB block."""
    blocks = []
    while buddy.has_block(ORDER_2M):
        blocks.append(buddy.allocate(ORDER_2M).address)
    # Splinter the last block: free it and pin a single 4 KB page inside it.
    last = blocks.pop()
    buddy.free(last)
    buddy.allocate(0)
    return buddy


class TestBuddyOnlyPolicy:
    def test_always_allocates_4k(self):
        policy = BuddyOnlyPolicy(make_buddy(), tiny_mimicos_config())
        vma = make_vma()
        allocation = policy.on_anonymous_fault(1, vma.start, vma)
        assert allocation.page_size == PAGE_SIZE_4K
        assert allocation.zeroing_bytes == PAGE_SIZE_4K


class TestLinuxTHPPolicy:
    def test_allocates_huge_page_when_region_fits(self):
        policy = LinuxTHPPolicy(make_buddy(), tiny_mimicos_config())
        vma = make_vma()
        allocation = policy.on_anonymous_fault(1, vma.start, vma)
        assert allocation.page_size == PAGE_SIZE_2M
        assert allocation.zeroing_bytes == PAGE_SIZE_2M

    def test_falls_back_when_region_does_not_fit(self):
        policy = LinuxTHPPolicy(make_buddy(), tiny_mimicos_config())
        vma = make_vma(size=64 * 1024)
        allocation = policy.on_anonymous_fault(1, vma.start + 4096, vma)
        assert allocation.page_size == PAGE_SIZE_4K
        assert allocation.notify_khugepaged

    def test_falls_back_when_no_huge_block_free(self):
        buddy = exhaust_huge_blocks(make_buddy(8 * MB))
        policy = LinuxTHPPolicy(buddy, tiny_mimicos_config())
        vma = make_vma()
        allocation = policy.on_anonymous_fault(1, vma.start, vma)
        assert allocation.page_size == PAGE_SIZE_4K
        assert allocation.fallback
        assert policy.counters.get("thp_fallbacks") == 1


class TestReservationPolicies:
    def test_conservative_promotes_after_half_region(self):
        policy = ConservativeReservationTHP(make_buddy(), tiny_mimicos_config())
        vma = make_vma()
        pages = PAGE_SIZE_2M // PAGE_SIZE_4K
        promoted = None
        for index in range(pages):
            allocation = policy.on_anonymous_fault(1, vma.start + index * PAGE_SIZE_4K, vma)
            if allocation.promoted_region_va is not None:
                promoted = index
                break
        assert promoted is not None
        assert promoted == pages // 2  # promotion just past 50 % utilisation

    def test_aggressive_promotes_earlier_than_conservative(self):
        def promotion_index(policy):
            vma = make_vma()
            pages = PAGE_SIZE_2M // PAGE_SIZE_4K
            for index in range(pages):
                allocation = policy.on_anonymous_fault(1, vma.start + index * PAGE_SIZE_4K, vma)
                if allocation.promoted_region_va is not None:
                    return index
            return pages

        aggressive = promotion_index(AggressiveReservationTHP(make_buddy(), tiny_mimicos_config()))
        conservative = promotion_index(ConservativeReservationTHP(make_buddy(), tiny_mimicos_config()))
        assert aggressive < conservative

    def test_reserved_offsets_are_stable(self):
        policy = ConservativeReservationTHP(make_buddy(), tiny_mimicos_config())
        vma = make_vma()
        first = policy.on_anonymous_fault(1, vma.start, vma)
        second = policy.on_anonymous_fault(1, vma.start + PAGE_SIZE_4K, vma)
        assert second.address == first.address + PAGE_SIZE_4K

    def test_reservation_falls_back_without_huge_blocks(self):
        buddy = exhaust_huge_blocks(make_buddy(8 * MB))
        policy = AggressiveReservationTHP(buddy, tiny_mimicos_config())
        vma = make_vma()
        allocation = policy.on_anonymous_fault(1, vma.start, vma)
        assert allocation.fallback
        assert allocation.page_size == PAGE_SIZE_4K

    def test_promotion_records_kernel_work(self):
        policy = AggressiveReservationTHP(make_buddy(), tiny_mimicos_config())
        vma = make_vma()
        trace = KernelRoutineTrace("fault")
        pages_needed = int((PAGE_SIZE_2M // PAGE_SIZE_4K) * 0.1) + 4
        promotion = None
        for index in range(pages_needed):
            allocation = policy.on_anonymous_fault(1, vma.start + index * PAGE_SIZE_4K, vma,
                                                   trace)
            if allocation.promoted_region_va is not None:
                promotion = allocation
                break
        assert promotion is not None
        assert "thp_promote_region" in trace.op_names()


class TestPolicyFactory:
    def test_known_policies(self):
        buddy = make_buddy()
        config = tiny_mimicos_config()
        for name in ("bd", "never", "linux", "cr_thp", "ar_thp"):
            assert build_thp_policy(name, buddy, config).name in (name, "reservation")

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            build_thp_policy("magic", make_buddy(), tiny_mimicos_config())


class TestKhugepaged:
    def _populate_small_pages(self, page_table, buddy, region_va, count):
        for index in range(count):
            frame = buddy.allocate(0).address
            page_table.insert(region_va + index * PAGE_SIZE_4K, frame, PAGE_SIZE_4K)

    def test_collapse_eligible_region(self):
        buddy = make_buddy()
        page_table = RadixPageTable()
        daemon = Khugepaged(buddy, min_present_pages=64)
        region = 0x7F00_0000_0000
        self._populate_small_pages(page_table, buddy, region, 128)
        daemon.enqueue_hint(pid=1, region_va=region)
        result = daemon.scan({1: page_table})
        assert result.regions_collapsed == 1
        assert result.pages_copied == 128
        assert page_table.lookup(region) == (page_table.lookup(region)[0], PAGE_SIZE_2M)

    def test_sparse_region_not_collapsed(self):
        buddy = make_buddy()
        page_table = RadixPageTable()
        daemon = Khugepaged(buddy, min_present_pages=64)
        region = 0x7F00_0000_0000
        self._populate_small_pages(page_table, buddy, region, 8)
        daemon.enqueue_hint(1, region)
        result = daemon.scan({1: page_table})
        assert result.regions_collapsed == 0

    def test_duplicate_hints_deduplicated(self):
        daemon = Khugepaged(make_buddy())
        daemon.enqueue_hint(1, 0x1000_0000)
        daemon.enqueue_hint(1, 0x1000_0000)
        assert daemon.pending_hints == 1

    def test_scan_limit_respected(self):
        buddy = make_buddy()
        daemon = Khugepaged(buddy, max_regions_per_scan=2)
        for index in range(5):
            daemon.enqueue_hint(1, 0x1000_0000 + index * PAGE_SIZE_2M)
        result = daemon.scan({1: RadixPageTable()})
        assert result.regions_scanned == 2
        assert daemon.pending_hints == 3

    def test_no_collapse_when_memory_exhausted(self):
        buddy = make_buddy(8 * MB)
        page_table = RadixPageTable()
        daemon = Khugepaged(buddy, min_present_pages=16)
        region = 0x7F00_0000_0000
        self._populate_small_pages(page_table, buddy, region, 32)
        while buddy.has_block(ORDER_2M):
            buddy.allocate(ORDER_2M)
        daemon.enqueue_hint(1, region)
        result = daemon.scan({1: page_table})
        assert result.regions_collapsed == 0
        assert daemon.counters.get("regions_skipped_no_memory") == 1


class TestFragmentationController:
    def test_fragment_to_target(self):
        buddy = make_buddy(64 * MB)
        controller = FragmentationController(buddy, DeterministicRNG(1))
        achieved = controller.fragment_to(0.5)
        assert achieved <= 0.55
        assert controller.pinned_pages > 0

    def test_release_all_restores_memory(self):
        buddy = make_buddy(64 * MB)
        controller = FragmentationController(buddy, DeterministicRNG(2))
        controller.fragment_to(0.7)
        controller.release_all()
        assert controller.pinned_pages == 0
        assert buddy.free_bytes == buddy.total_bytes

    def test_invalid_target_rejected(self):
        controller = FragmentationController(make_buddy())
        with pytest.raises(ValueError):
            controller.fragment_to(1.5)

    def test_already_fragmented_is_noop(self):
        buddy = make_buddy(64 * MB)
        controller = FragmentationController(buddy)
        achieved = controller.fragment_to(1.0)
        assert achieved == pytest.approx(1.0)
        assert controller.pinned_pages == 0
