"""Tests for the page-fault handler and the MimicOS kernel as a whole."""

import pytest

from repro.common.addresses import MB, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.config import PageTableConfig, SSDConfig
from repro.mimicos.kernel import MimicOS
from repro.mimicos.vma import VMAKind
from repro.storage.ssd import SSDModel
from tests.conftest import tiny_mimicos_config


def make_kernel(thp_policy="linux", pt_kind="radix", ssd=False, **overrides):
    config = tiny_mimicos_config(thp_policy=thp_policy, **overrides)
    ssd_model = SSDModel(SSDConfig()) if ssd else None
    return MimicOS(config, PageTableConfig(kind=pt_kind), ssd=ssd_model)


class TestPageFaultHandling:
    def test_anonymous_fault_installs_translation(self):
        kernel = make_kernel()
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 8 * MB)
        result = kernel.handle_page_fault(process.pid, vma.start)
        assert not result.segfault
        assert process.page_table.lookup(vma.start) is not None
        assert result.page_size in (PAGE_SIZE_4K, PAGE_SIZE_2M)

    def test_fault_outside_any_vma_is_segfault(self):
        kernel = make_kernel()
        process = kernel.create_process("app")
        result = kernel.handle_page_fault(process.pid, 0x1234_5678)
        assert result.segfault
        assert "deliver_sigsegv" in result.trace.op_names()

    def test_unknown_pid_rejected(self):
        kernel = make_kernel()
        with pytest.raises(KeyError):
            kernel.handle_page_fault(999, 0x1000)

    def test_thp_enabled_uses_huge_pages(self):
        kernel = make_kernel(thp_policy="linux")
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 8 * MB)
        result = kernel.handle_page_fault(process.pid, vma.start)
        assert result.page_size == PAGE_SIZE_2M

    def test_bd_policy_uses_small_pages(self):
        kernel = make_kernel(thp_policy="bd")
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 8 * MB)
        result = kernel.handle_page_fault(process.pid, vma.start)
        assert result.page_size == PAGE_SIZE_4K

    def test_fault_trace_contains_fig6_steps(self):
        kernel = make_kernel(thp_policy="bd")
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 1 * MB)
        result = kernel.handle_page_fault(process.pid, vma.start)
        names = result.trace.op_names()
        assert "fault_entry" in names
        assert "find_vma" in names
        assert "buddy_alloc" in names
        assert "zero_page" in names
        assert "fault_return" in names

    def test_huge_fault_has_larger_trace_than_small_fault(self):
        kernel_small = make_kernel(thp_policy="bd")
        kernel_huge = make_kernel(thp_policy="linux")
        process_small = kernel_small.create_process("a")
        process_huge = kernel_huge.create_process("b")
        vma_small = kernel_small.mmap(process_small, 8 * MB)
        vma_huge = kernel_huge.mmap(process_huge, 8 * MB)
        small = kernel_small.handle_page_fault(process_small.pid, vma_small.start)
        huge = kernel_huge.handle_page_fault(process_huge.pid, vma_huge.start)
        assert huge.trace.total_work_units > small.trace.total_work_units * 10

    def test_hugetlb_vma_served_from_pool(self):
        kernel = make_kernel(hugetlbfs_reserved_bytes=8 * MB)
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 4 * MB, kind=VMAKind.HUGETLB)
        result = kernel.handle_page_fault(process.pid, vma.start)
        assert result.page_size == PAGE_SIZE_2M
        assert kernel.hugetlbfs.counters.get("allocations") == 1

    def test_file_backed_fault_hits_prepopulated_page_cache(self):
        kernel = make_kernel()
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 2 * MB, kind=VMAKind.FILE_BACKED,
                          populate_page_cache=True)
        result = kernel.handle_page_fault(process.pid, vma.start)
        assert not result.is_major
        assert result.disk_latency_cycles == 0

    def test_file_backed_fault_misses_page_cache_and_goes_to_disk(self):
        kernel = make_kernel(ssd=True)
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 2 * MB, kind=VMAKind.FILE_BACKED)
        result = kernel.handle_page_fault(process.pid, vma.start)
        assert result.is_major
        assert result.disk_latency_cycles > 0

    def test_repeated_faults_cover_the_vma(self):
        kernel = make_kernel(thp_policy="bd")
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 64 * PAGE_SIZE_4K)
        for index in range(16):
            kernel.handle_page_fault(process.pid, vma.start + index * PAGE_SIZE_4K)
        assert process.page_table.mapped_pages() == 16

    def test_fault_counters(self):
        kernel = make_kernel(thp_policy="bd")
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 1 * MB)
        kernel.handle_page_fault(process.pid, vma.start)
        stats = kernel.stats()
        assert stats["fault_handler"]["page_faults"] == 1
        assert stats["kernel"]["page_fault_requests"] == 1


class TestSwapReclaim:
    def test_memory_pressure_triggers_swapping(self):
        kernel = make_kernel(thp_policy="linux", physical_memory_bytes=128 * MB,
                             swap_size_bytes=32 * MB, swap_threshold=0.30, ssd=True)
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 96 * MB)
        swapped = 0
        for index in range(0, 96 * MB // PAGE_SIZE_2M):
            result = kernel.handle_page_fault(process.pid, vma.start + index * PAGE_SIZE_2M)
            swapped += result.swapped_out_pages
            if swapped:
                break
        # The huge-page faults cross the 30 % threshold well before the VMA is
        # fully touched, so reclaim must have swapped something out.
        assert kernel.memory_usage <= 1.0
        assert swapped > 0
        assert kernel.swap.counters.get("swap_outs") > 0

    def test_swapped_page_faults_back_in(self):
        kernel = make_kernel(thp_policy="linux", physical_memory_bytes=128 * MB,
                             swap_size_bytes=64 * MB, swap_threshold=0.25, ssd=True)
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 80 * MB)
        for index in range(0, 80 * MB // PAGE_SIZE_2M):
            kernel.handle_page_fault(process.pid, vma.start + index * PAGE_SIZE_2M)
            if kernel.swap.counters.get("swap_outs") > 0:
                break
        assert kernel.swap.counters.get("swap_outs") > 0
        # Fault one of the swapped pages back in.
        swapped_key = next(iter(kernel.swap._slots))
        swapped_vpn = swapped_key[1]
        result = kernel.handle_page_fault(process.pid, swapped_vpn * PAGE_SIZE_4K)
        assert result.is_major
        assert kernel.swap.counters.get("swap_ins") == 1


class TestKernelConfiguration:
    def test_create_process_builds_configured_page_table(self):
        kernel = make_kernel(pt_kind="ech")
        process = kernel.create_process("app")
        assert process.page_table.kind == "ech"

    def test_mmap_registers_midgard_vmas(self):
        kernel = make_kernel(pt_kind="midgard")
        process = kernel.create_process("app")
        kernel.mmap(process, 4 * MB)
        assert process.page_table.counters.get("registered_vmas") == 1

    def test_utopia_reserves_restseg_memory(self):
        config = tiny_mimicos_config()
        radix_kernel = MimicOS(config, PageTableConfig(kind="radix"))
        utopia_kernel = MimicOS(config, PageTableConfig(kind="utopia",
                                                        restseg_size_bytes=32 * MB))
        assert utopia_kernel.buddy.total_bytes < radix_kernel.buddy.total_bytes

    def test_fragment_memory_reaches_target(self):
        kernel = make_kernel()
        achieved = kernel.fragment_memory(0.6)
        assert achieved <= 0.65

    def test_munmap_releases_mappings(self):
        kernel = make_kernel(thp_policy="bd")
        process = kernel.create_process("app")
        vma = kernel.mmap(process, 16 * PAGE_SIZE_4K)
        for index in range(4):
            kernel.handle_page_fault(process.pid, vma.start + index * PAGE_SIZE_4K)
        removed = kernel.munmap(process, vma)
        assert removed == 4
        assert process.page_table.mapped_pages() == 0

    def test_stats_cover_all_modules(self):
        kernel = make_kernel()
        stats = kernel.stats()
        for module in ("kernel", "fault_handler", "buddy", "thp", "page_cache", "swap"):
            assert module in stats
