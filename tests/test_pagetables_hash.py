"""Tests for the hash-based page tables: HDC, the chained HT and elastic cuckoo."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.addresses import PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.kernelops import KernelRoutineTrace
from repro.pagetables.cuckoo import ElasticCuckooPageTable
from repro.pagetables.hashchain import ChainedHashPageTable
from repro.pagetables.hashing import bucket_index, mix64
from repro.pagetables.hdc import OpenAddressingHashPageTable
from tests.conftest import FlatMemory


class TestHashing:
    def test_mix64_deterministic(self):
        assert mix64(12345) == mix64(12345)
        assert mix64(12345, salt=1) != mix64(12345, salt=2)

    def test_bucket_index_in_range(self):
        for key in range(100):
            assert 0 <= bucket_index(key, 17) < 17

    def test_bucket_index_rejects_empty_table(self):
        with pytest.raises(ValueError):
            bucket_index(1, 0)


ALL_HASH_TABLES = [
    pytest.param(lambda: OpenAddressingHashPageTable(table_size_bytes=1 << 20), id="hdc"),
    pytest.param(lambda: ChainedHashPageTable(table_size_bytes=1 << 20), id="ht"),
    pytest.param(lambda: ElasticCuckooPageTable(initial_buckets_per_way=512), id="ech"),
]


@pytest.mark.parametrize("factory", ALL_HASH_TABLES)
class TestHashTableCommonBehaviour:
    def test_insert_lookup_roundtrip(self, factory):
        table = factory()
        table.insert(0x7F00_0000_0000, 0x10_0000, PAGE_SIZE_4K)
        assert table.lookup(0x7F00_0000_0000) == (0x10_0000, PAGE_SIZE_4K)

    def test_walk_finds_installed_mapping(self, factory):
        table = factory()
        memory = FlatMemory()
        table.insert(0x7F00_0000_0000, 0x10_0000, PAGE_SIZE_4K)
        result = table.walk(0x7F00_0000_0000 + 100, memory)
        assert result.found
        assert result.physical_base == 0x10_0000
        assert result.memory_accesses >= 1

    def test_walk_miss(self, factory):
        table = factory()
        result = table.walk(0x1234_5000, FlatMemory())
        assert not result.found

    def test_remove(self, factory):
        table = factory()
        table.insert(0x6000_0000, 0x40_0000, PAGE_SIZE_4K)
        assert table.remove(0x6000_0000)
        assert table.lookup(0x6000_0000) is None
        assert not table.walk(0x6000_0000, FlatMemory()).found

    def test_huge_page_support(self, factory):
        table = factory()
        table.insert(0x4000_0000, 0x800_0000, PAGE_SIZE_2M)
        assert table.lookup(0x4000_0000 + 0x12345) == (0x800_0000, PAGE_SIZE_2M)
        result = table.walk(0x4000_0000 + 0x12345, FlatMemory())
        assert result.found and result.page_size == PAGE_SIZE_2M

    def test_insert_records_kernel_work(self, factory):
        table = factory()
        trace = KernelRoutineTrace("fault")
        table.insert(0x7F00_0000_0000, 0x10_0000, PAGE_SIZE_4K, trace)
        assert trace.ops, "hash PT insert should record kernel work"

    def test_no_pt_frames_allocated_per_insert(self, factory):
        table = factory()
        before = table.frame_allocator(None)
        for index in range(50):
            table.insert(0x7F00_0000_0000 + index * PAGE_SIZE_4K, index * PAGE_SIZE_4K,
                         PAGE_SIZE_4K)
        after = table.frame_allocator(None)
        # The bump allocator only moved by the two probe calls made here, not
        # by the 50 insertions: hash PTs allocate their tables up front.
        assert after - before == PAGE_SIZE_4K

    @given(st.sets(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=50))
    @settings(max_examples=15, deadline=None)
    def test_many_mappings_stay_consistent_property(self, factory, page_numbers):
        table = factory()
        memory = FlatMemory()
        expected = {}
        for index, vpn in enumerate(sorted(page_numbers)):
            virtual = 0x7F00_0000_0000 + vpn * PAGE_SIZE_4K
            physical = 0x20_0000_0000 + index * PAGE_SIZE_4K
            table.insert(virtual, physical, PAGE_SIZE_4K)
            expected[virtual] = physical
        for virtual, physical in expected.items():
            assert table.lookup(virtual) == (physical, PAGE_SIZE_4K)
            walk = table.walk(virtual, memory)
            assert walk.found and walk.physical_base == physical


class TestHDCSpecifics:
    def test_single_access_walk_in_common_case(self):
        table = OpenAddressingHashPageTable(table_size_bytes=1 << 22)
        memory = FlatMemory()
        table.insert(0x7F00_0000_0000, 0x10_0000, PAGE_SIZE_4K)
        result = table.walk(0x7F00_0000_0000, memory)
        assert result.memory_accesses == 1

    def test_collisions_extend_probe_sequence(self):
        table = OpenAddressingHashPageTable(table_size_bytes=64 * 4)  # 4 buckets
        for index in range(4):
            # Addresses in distinct clusters so each insert needs its own bucket.
            table.insert(0x7F00_0000_0000 + index * PAGE_SIZE_4K * 8,
                         index * PAGE_SIZE_4K, PAGE_SIZE_4K)
        assert table.counters.get("insert_probes") >= 4

    def test_clustered_pages_share_a_bucket(self):
        table = OpenAddressingHashPageTable(table_size_bytes=1 << 20)
        base = 0x7F00_0000_0000
        for index in range(8):
            table.insert(base + index * PAGE_SIZE_4K, index * PAGE_SIZE_4K, PAGE_SIZE_4K)
        assert len(table._buckets) == 1
        walk = table.walk(base + 3 * PAGE_SIZE_4K, FlatMemory())
        assert walk.found and walk.memory_accesses == 1


class TestChainedHashSpecifics:
    #: Pages this far apart fall into different 8-PTE clusters.
    CLUSTER_STRIDE = PAGE_SIZE_4K * 8

    def test_chain_length_grows_with_collisions(self):
        table = ChainedHashPageTable(table_size_bytes=64 * 2)  # 2 buckets
        for index in range(6):
            table.insert(0x7F00_0000_0000 + index * self.CLUSTER_STRIDE,
                         index * PAGE_SIZE_4K, PAGE_SIZE_4K)
        assert table.average_chain_length() >= 2.0

    def test_chained_walk_costs_grow_with_chain_position(self):
        table = ChainedHashPageTable(table_size_bytes=64 * 1)  # single bucket
        memory = FlatMemory()
        addresses = [0x7F00_0000_0000 + index * self.CLUSTER_STRIDE for index in range(4)]
        for index, address in enumerate(addresses):
            table.insert(address, index * PAGE_SIZE_4K, PAGE_SIZE_4K)
        first = table.walk(addresses[0], memory)
        last = table.walk(addresses[-1], memory)
        assert last.memory_accesses > first.memory_accesses

    def test_clustered_pages_share_a_chain_entry(self):
        table = ChainedHashPageTable(table_size_bytes=1 << 20)
        memory = FlatMemory()
        base = 0x7F00_0000_0000
        for index in range(8):  # one 8-PTE cluster
            table.insert(base + index * PAGE_SIZE_4K, index * PAGE_SIZE_4K, PAGE_SIZE_4K)
        assert table.average_chain_length() == 1.0
        walk = table.walk(base + 7 * PAGE_SIZE_4K, memory)
        assert walk.found and walk.memory_accesses == 1


class TestElasticCuckooSpecifics:
    def test_parallel_probe_traffic(self):
        table = ElasticCuckooPageTable(ways=4, initial_buckets_per_way=512)
        memory = FlatMemory()
        table.insert(0x7F00_0000_0000, 0x10_0000, PAGE_SIZE_4K)
        result = table.walk(0x7F00_0000_0000, memory)
        # All four nests are probed even though latency is the max of them.
        assert result.memory_accesses == 4
        assert result.latency <= memory.latency + table.cwc_latency

    def test_elastic_resize_on_pressure(self):
        table = ElasticCuckooPageTable(ways=2, initial_buckets_per_way=4)
        for index in range(64):
            table.insert(0x7F00_0000_0000 + index * PAGE_SIZE_4K, index * PAGE_SIZE_4K,
                         PAGE_SIZE_4K)
        assert table.counters.get("elastic_resizes") >= 1
        # Every mapping must still be reachable after resizes.
        for index in range(64):
            virtual = 0x7F00_0000_0000 + index * PAGE_SIZE_4K
            assert table.lookup(virtual) == (index * PAGE_SIZE_4K, PAGE_SIZE_4K)

    def test_load_factor_reported(self):
        table = ElasticCuckooPageTable(initial_buckets_per_way=128)
        assert table.load_factor(PAGE_SIZE_4K) == 0.0
        table.insert(0x7F00_0000_0000, 0, PAGE_SIZE_4K)
        assert table.load_factor(PAGE_SIZE_4K) > 0.0
