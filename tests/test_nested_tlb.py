"""Unit tests for the nested (2-D) translation unit and its nested TLB.

Covers the fill/lookup/invalidate/flush surface the two-level shootdown
wiring depends on, the LRU and version semantics (which mirror the regular
TLBs so the VPN translation cache stays honest), and the split guest/host
latency accounting of the 2-D walk.
"""

import pytest

from repro.common.addresses import MB, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.mmu.nested import NestedTranslationUnit, _NestedTLB
from repro.pagetables.base import WalkResult
from tests.conftest import FlatMemory


class _StubTable:
    """Walk-capable page-table stub with a scripted mapping."""

    def __init__(self, mappings, latency=30, accesses=4):
        self.mappings = dict(mappings)
        self.latency = latency
        self.accesses = accesses
        self.walks = 0

    def walk(self, virtual_address, memory):
        self.walks += 1
        for base, (physical, size) in self.mappings.items():
            if base <= virtual_address < base + size:
                return WalkResult(found=True, latency=self.latency,
                                  memory_accesses=self.accesses,
                                  physical_base=physical, page_size=size)
        return WalkResult(found=False, latency=self.latency,
                          memory_accesses=self.accesses)


class TestNestedTLB:
    def test_fill_then_lookup_hits(self):
        tlb = _NestedTLB(entries=4)
        tlb.fill(0x1000, 0x8000, PAGE_SIZE_4K)
        assert tlb.lookup(0x1000) == (0x8000, PAGE_SIZE_4K)
        assert tlb.lookup(0x2000) is None

    def test_lru_eviction(self):
        tlb = _NestedTLB(entries=2)
        tlb.fill(0x1000, 0xA000, PAGE_SIZE_4K)
        tlb.fill(0x2000, 0xB000, PAGE_SIZE_4K)
        tlb.lookup(0x1000)                      # refresh 0x1000's stamp
        tlb.fill(0x3000, 0xC000, PAGE_SIZE_4K)  # evicts 0x2000 (LRU)
        assert tlb.lookup(0x1000) is not None
        assert tlb.lookup(0x2000) is None
        assert tlb.lookup(0x3000) is not None

    def test_invalidate_drops_only_the_named_page(self):
        tlb = _NestedTLB(entries=4)
        tlb.fill(0x1000, 0xA000, PAGE_SIZE_4K)
        tlb.fill(0x2000, 0xB000, PAGE_SIZE_4K)
        assert tlb.invalidate(0x1000) is True
        assert tlb.invalidate(0x1000) is False   # already gone
        assert tlb.lookup(0x1000) is None
        assert tlb.lookup(0x2000) is not None

    def test_flush_drops_everything(self):
        tlb = _NestedTLB(entries=4)
        tlb.fill(0x1000, 0xA000, PAGE_SIZE_4K)
        tlb.fill(0x2000, 0xB000, PAGE_SIZE_4K)
        assert tlb.flush() is True
        assert tlb.flush() is False              # nothing left to drop
        assert tlb.lookup(0x1000) is None and tlb.lookup(0x2000) is None

    def test_version_bumps_on_every_content_change(self):
        tlb = _NestedTLB(entries=4)
        v0 = tlb.version
        tlb.fill(0x1000, 0xA000, PAGE_SIZE_4K)
        v1 = tlb.version
        assert v1 > v0
        tlb.invalidate(0x1000)
        v2 = tlb.version
        assert v2 > v1
        tlb.fill(0x2000, 0xB000, PAGE_SIZE_4K)
        tlb.flush()
        assert tlb.version > v2
        # Lookups (hit or miss) are not content changes.
        before = tlb.version
        tlb.lookup(0x2000)
        assert tlb.version == before


class TestNestedTranslationUnit:
    def _unit(self):
        guest = _StubTable({0x0: (0x40_0000, PAGE_SIZE_2M)}, latency=30, accesses=4)
        # Host table maps guest-physical 0x40_0000..+2M onto host-physical.
        host = _StubTable({0x40_0000: (0x80_0000, PAGE_SIZE_2M)}, latency=20, accesses=4)
        return NestedTranslationUnit(guest, host, nested_tlb_entries=8), guest, host

    def test_cold_walk_charges_both_dimensions(self):
        unit, guest, host = self._unit()
        result = unit.walk(0x1000, FlatMemory())
        assert result.found
        assert guest.walks == 1
        # One host walk per guest memory access (the 2-D blow-up).
        assert host.walks == guest.accesses
        assert result.guest_latency == guest.latency
        assert result.host_latency == host.latency * guest.accesses
        assert result.latency == result.guest_latency + result.host_latency

    def test_warm_walk_hits_nested_tlb_with_no_table_walks(self):
        unit, guest, host = self._unit()
        unit.walk(0x1000, FlatMemory())
        warm = unit.walk(0x1000, FlatMemory())
        assert warm.found
        assert warm.memory_accesses == 0
        assert warm.guest_latency == 0 and warm.host_latency == 0
        assert guest.walks == 1 and host.walks == 4  # no new walks
        assert unit.stats().get("nested_tlb_hits") == 1

    def test_invalidate_forces_a_fresh_two_dimensional_walk(self):
        unit, guest, host = self._unit()
        unit.walk(0x1000, FlatMemory())
        unit.invalidate(0x1000)
        assert unit.stats().get("nested_tlb_invalidations") == 1
        again = unit.walk(0x1000, FlatMemory())
        assert again.found
        assert guest.walks == 2          # really re-walked
        assert again.memory_accesses > 0

    def test_flush_forces_fresh_walks_for_every_page(self):
        unit, guest, host = self._unit()
        unit.walk(0x1000, FlatMemory())
        unit.walk(0x3000, FlatMemory())
        walks_before = guest.walks
        unit.flush()
        assert unit.stats().get("nested_tlb_flushes") == 1
        unit.walk(0x1000, FlatMemory())
        unit.walk(0x3000, FlatMemory())
        assert guest.walks == walks_before + 2

    def test_stale_entry_translates_wrong_until_invalidated(self):
        """The bug class the invalidation wiring exists for: remap the host
        dimension and the nested TLB keeps translating to the old frame."""
        unit, guest, host = self._unit()
        first = unit.walk(0x1000, FlatMemory())
        old_base = first.host_physical_base
        # Hypervisor remaps the backing frame.
        host.mappings[0x40_0000] = (0xC0_0000, PAGE_SIZE_2M)
        stale = unit.walk(0x1000, FlatMemory())
        assert stale.host_physical_base == old_base  # wrong: stale entry
        unit.flush()
        fresh = unit.walk(0x1000, FlatMemory())
        assert fresh.host_physical_base != old_base

    def test_guest_fault_reports_guest_dimension_only(self):
        unit = NestedTranslationUnit(_StubTable({}), _StubTable({}),
                                     nested_tlb_entries=8)
        result = unit.walk(0x1000, FlatMemory())
        assert not result.found and result.guest_fault
        assert result.host_latency == 0
        assert result.guest_latency == result.latency

    def test_host_fault_reports_both_dimensions(self):
        guest = _StubTable({0x0: (0x40_0000, PAGE_SIZE_2M)})
        unit = NestedTranslationUnit(guest, _StubTable({}), nested_tlb_entries=8)
        result = unit.walk(0x1000, FlatMemory())
        assert not result.found and result.host_fault
        assert result.guest_latency > 0 and result.host_latency > 0
        assert result.latency == result.guest_latency + result.host_latency
