"""Tests for the deterministic RNG and the configuration dataclasses."""

import pytest
from hypothesis import given, strategies as st

from repro.common.addresses import GB, MB, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.config import (
    CASE_STUDY_PAGE_TABLES,
    CacheConfig,
    DRAMConfig,
    MimicOSConfig,
    PageTableConfig,
    SystemConfig,
    TLBConfig,
    baseline_system_config,
    real_system_reference_config,
    scaled_system_config,
)
from repro.common.rng import DeterministicRNG


class TestDeterministicRNG:
    def test_same_seed_same_stream(self):
        a, b = DeterministicRNG(42), DeterministicRNG(42)
        assert [a.randint(0, 100) for _ in range(10)] == [b.randint(0, 100) for _ in range(10)]

    def test_different_seed_different_stream(self):
        a, b = DeterministicRNG(1), DeterministicRNG(2)
        assert [a.randint(0, 10 ** 9) for _ in range(5)] != [b.randint(0, 10 ** 9) for _ in range(5)]

    def test_fork_is_independent(self):
        parent = DeterministicRNG(7)
        fork_a = parent.fork(1)
        fork_b = parent.fork(2)
        assert fork_a.randint(0, 10 ** 9) != fork_b.randint(0, 10 ** 9)

    def test_fork_deterministic(self):
        assert DeterministicRNG(7).fork(3).randint(0, 1000) == \
            DeterministicRNG(7).fork(3).randint(0, 1000)

    @given(st.integers(min_value=1, max_value=10_000), st.floats(min_value=0.5, max_value=2.0))
    def test_zipf_index_in_range_property(self, n, skew):
        rng = DeterministicRNG(3)
        for _ in range(20):
            assert 0 <= rng.zipf_index(n, skew) < n

    def test_zipf_skews_towards_low_indices(self):
        rng = DeterministicRNG(5)
        draws = [rng.zipf_index(1000, 1.0) for _ in range(2000)]
        low = sum(1 for d in draws if d < 100)
        assert low > len(draws) * 0.4

    def test_choice_and_sample(self):
        rng = DeterministicRNG(9)
        items = list(range(10))
        assert rng.choice(items) in items
        sample = rng.sample(items, 3)
        assert len(set(sample)) == 3


class TestTLBConfig:
    def test_sets(self):
        config = TLBConfig("T", entries=64, associativity=4, latency=1)
        assert config.sets == 16

    def test_invalid_associativity(self):
        with pytest.raises(ValueError):
            TLBConfig("T", entries=10, associativity=3, latency=1)

    def test_non_positive_entries(self):
        with pytest.raises(ValueError):
            TLBConfig("T", entries=0, associativity=1, latency=1)


class TestCacheConfig:
    def test_sets(self):
        config = CacheConfig("L1", size_bytes=32 * 1024, associativity=8, latency=4)
        assert config.sets == 64

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig("L1", size_bytes=1000, associativity=8, latency=4)


class TestDRAMConfig:
    def test_latency_ordering(self):
        config = DRAMConfig()
        assert config.row_hit_latency < config.row_miss_latency < config.row_conflict_latency


class TestSystemConfigs:
    def test_baseline_config_matches_table4_shape(self):
        config = baseline_system_config()
        assert config.l2_tlb.entries == 2048
        assert config.l2_tlb.associativity == 16
        assert config.l1d_cache.size_bytes == 32 * 1024
        assert config.mimicos.thp_policy == "linux"

    def test_reference_config_uses_reference_mode(self):
        config = real_system_reference_config()
        assert config.simulation.os_mode == "reference"

    def test_scaled_config_shrinks_structures(self):
        base = baseline_system_config()
        scaled = scaled_system_config(physical_memory_bytes=1 * GB)
        assert scaled.l2_tlb.entries < base.l2_tlb.entries
        assert scaled.l2_cache.size_bytes < base.l2_cache.size_bytes
        assert scaled.mimicos.physical_memory_bytes == 1 * GB
        assert scaled.l2_tlb.entries % scaled.l2_tlb.associativity == 0

    def test_with_page_table_returns_new_config(self):
        base = baseline_system_config()
        ech = base.with_page_table(PageTableConfig(kind="ech"))
        assert ech.page_table.kind == "ech"
        assert base.page_table.kind == "radix"

    def test_case_study_page_tables_cover_paper_designs(self):
        for kind in ("radix", "ech", "hdc", "ht", "utopia", "rmm", "midgard"):
            assert kind in CASE_STUDY_PAGE_TABLES
            assert CASE_STUDY_PAGE_TABLES[kind].kind == kind
