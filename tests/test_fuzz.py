"""The scenario fuzzer: generation, injection, oracle, shrinking, acceptance.

The heavyweight acceptance proofs live here too: a deliberately broken
invalidation path must be *found* by a seeded budget-bounded fuzz run,
*shrunk* to a minimal reproducer, and the banked entry must fail under the
broken build and pass under the fixed one; a fixed-seed campaign must be
deterministic across worker counts and resumable through the experiment
service after SIGKILL.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.common.rng import DeterministicRNG
from repro.core.instructions import Instruction, InstructionKind
from repro.mimicos.kernel import MimicOS
from repro.validation import corpus, fuzz
from repro.validation.fuzz import (
    CoverageMap,
    FuzzConfig,
    FuzzScenario,
    generate_scenarios,
    run_fuzz_scenario,
    scenario_key,
    shrink_scenario,
)
from repro.workloads.base import Workload
from repro.workloads.schedule import KernelOpSpec, OpSchedule, ScheduledWorkload

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Summary keys that legitimately vary run to run (host timing, cache hits).
VOLATILE_SUMMARY_KEYS = ("wall_seconds", "service")


def _stable(summary):
    return {key: value for key, value in summary.items()
            if key not in VOLATILE_SUMMARY_KEYS}


# --------------------------------------------------------------------- #
# DeterministicRNG snapshot/restore (satellite: RNG cursor capture)
# --------------------------------------------------------------------- #
class TestRNGSnapshot:
    def test_restore_replays_the_stream(self):
        rng = DeterministicRNG(3)
        for _ in range(7):
            rng.random()
        cursor = rng.snapshot()
        first = [rng.randint(0, 10 ** 9) for _ in range(20)]
        rng.restore(cursor)
        assert [rng.randint(0, 10 ** 9) for _ in range(20)] == first

    def test_snapshot_survives_json_round_trip_into_fresh_rng(self):
        rng = DeterministicRNG(99)
        rng.uniform(0.0, 5.0)
        cursor = json.loads(json.dumps(rng.snapshot()))
        expected = [rng.random() for _ in range(10)]
        other = DeterministicRNG(0)  # different seed: state fully overwritten
        other.restore(cursor)
        assert [other.random() for _ in range(10)] == expected


# --------------------------------------------------------------------- #
# Schedule injection mechanics
# --------------------------------------------------------------------- #
class _FlatWorkload(Workload):
    """100 ALU instructions — a bare substrate for boundary tests."""

    name = "flat"

    def setup(self, kernel, process):
        pass

    def instructions(self, process):
        for pc in range(100):
            yield Instruction(kind=InstructionKind.ALU, pc=pc)


class _Recorder:
    def __init__(self):
        self.applied = []

    def apply(self, spec, process):
        self.applied.append(spec)


class TestScheduledWorkload:
    def _schedule(self):
        return OpSchedule(ops=(KernelOpSpec("touch", 10, {"slot": 1}),
                               KernelOpSpec("collapse", 10, {}),
                               KernelOpSpec("reclaim", 37, {}),
                               KernelOpSpec("migrate", 400, {})))

    def test_instruction_sequence_is_unchanged_by_wrapping(self):
        wrapped = ScheduledWorkload(_FlatWorkload(), self._schedule())
        wrapped.bind(_Recorder())
        assert ([i.pc for i in wrapped.instructions(None)]
                == [i.pc for i in _FlatWorkload().instructions(None)])

    def test_batch_boundaries_cut_exactly_at_op_offsets(self):
        recorder = _Recorder()
        wrapped = ScheduledWorkload(_FlatWorkload(), self._schedule())
        wrapped.bind(recorder)
        sizes = []
        fired_after = []  # instructions emitted before each op fired
        emitted = 0
        for batch in wrapped.instruction_batches(None, batch_size=16):
            while len(fired_after) < len(recorder.applied):
                fired_after.append(emitted)
            emitted += len(batch)
            sizes.append(len(batch))
        while len(fired_after) < len(recorder.applied):
            fired_after.append(emitted)
        assert sum(sizes) == 100
        # Ops at offset 10 and 37 fire when exactly 10 / 37 instructions
        # have been emitted ahead of them; the off-the-end op fires last.
        assert [spec.op for spec in recorder.applied] == [
            "touch", "collapse", "reclaim", "migrate"]
        assert fired_after == [10, 10, 37, 100]

    def test_legacy_iteration_fires_ops_at_the_same_offsets(self):
        recorder = _Recorder()
        wrapped = ScheduledWorkload(_FlatWorkload(), self._schedule())
        wrapped.bind(recorder)
        fired_after = []
        emitted = 0
        iterator = wrapped.instructions(None)
        for instruction in iterator:
            while len(fired_after) < len(recorder.applied):
                fired_after.append(emitted)
            emitted += 1
        while len(fired_after) < len(recorder.applied):
            fired_after.append(emitted)
        assert fired_after == [10, 10, 37, 100]

    def test_unbound_executor_is_an_error(self):
        wrapped = ScheduledWorkload(_FlatWorkload(),
                                    OpSchedule(ops=(KernelOpSpec("mmap", 0, {}),)))
        with pytest.raises(RuntimeError, match="no executor bound"):
            list(wrapped.instructions(None))


# --------------------------------------------------------------------- #
# Seeded generation and coverage guidance
# --------------------------------------------------------------------- #
class TestGeneration:
    def test_same_seed_same_scenarios_and_cursors(self):
        first = generate_scenarios(10, seed=5)
        second = generate_scenarios(10, seed=5)
        assert [(s.to_json(), cursor) for s, cursor in first] \
            == [(s.to_json(), cursor) for s, cursor in second]
        assert generate_scenarios(10, seed=6)[0][0] != first[0][0]

    def test_every_schedule_carries_a_mutator_and_respects_max_ops(self):
        for scenario, _cursor in generate_scenarios(30, seed=1, max_ops=5):
            ops = [spec.op for spec in scenario.schedule.ops]
            assert 2 <= len(ops) <= 5
            assert any(op in fuzz.MUTATOR_OPS for op in ops)
            assert ops[0] == "mmap"

    def test_scenarios_round_trip_through_json(self):
        for scenario, _cursor in generate_scenarios(5, seed=8):
            clone = FuzzScenario.from_json(json.loads(
                json.dumps(scenario.to_json())))
            assert clone == scenario
            assert scenario_key(clone) == scenario_key(scenario)

    def test_coverage_novelty_guides_selection(self):
        coverage = CoverageMap()
        scenario = generate_scenarios(1, seed=3)[0][0]
        before = coverage.novelty(scenario)
        assert before > 0
        coverage.observe(scenario)
        assert coverage.novelty(scenario) == 0
        stats = coverage.stats()
        assert stats["op_pair_backend"] > 0
        assert stats["op_axis"] > 0
        assert stats["op_pair_backend"] <= stats["op_pair_backend_space"]


# --------------------------------------------------------------------- #
# Shrinking (synthetic predicate: no simulation cost)
# --------------------------------------------------------------------- #
class TestShrinker:
    def test_minimises_ops_then_config_axes(self):
        ops = tuple(KernelOpSpec(op, offset, {}) for op, offset in
                    [("mmap", 10), ("touch", 20), ("reclaim", 30),
                     ("collapse", 40), ("munmap", 50)])
        scenario = FuzzScenario(
            config=FuzzConfig(backend="vbi", family="mix", cores=2,
                              thp=False, swap=True),
            schedule=OpSchedule(ops=ops))
        diverges = lambda s: any(spec.op == "reclaim" for spec in s.schedule.ops)
        shrunk, checks = shrink_scenario(scenario, diverges=diverges)
        assert [spec.op for spec in shrunk.schedule.ops] == ["reclaim"]
        assert shrunk.config == FuzzConfig()  # every axis shrank to vanilla
        assert 0 < checks <= 60

    def test_respects_the_check_budget(self):
        ops = tuple(KernelOpSpec("touch", i, {}) for i in range(8))
        scenario = FuzzScenario(config=FuzzConfig(), schedule=OpSchedule(ops=ops))
        calls = []

        def diverges(candidate):
            calls.append(candidate)
            return True

        shrunk, checks = shrink_scenario(scenario, diverges=diverges, max_checks=5)
        assert checks == 5
        assert len(calls) == 5
        assert len(shrunk.schedule.ops) < len(ops)


# --------------------------------------------------------------------- #
# The oracle end to end (healthy build)
# --------------------------------------------------------------------- #
class TestOracle:
    def test_scheduled_kernel_ops_stay_engine_identical(self):
        ops = (KernelOpSpec("mmap", 40, {"pages": 96}),
               KernelOpSpec("touch", 150, {"slot": 0, "pages": 32, "stride": 1}),
               KernelOpSpec("collapse", 500, {"regions": 4}),
               KernelOpSpec("reclaim", 800, {"pages": 6}),
               KernelOpSpec("remap", 1000, {"slot": 0}),
               KernelOpSpec("migrate", 1200, {}))
        scenario = FuzzScenario(config=FuzzConfig(), schedule=OpSchedule(ops=ops))
        digest = run_fuzz_scenario(scenario.to_json())
        assert digest["outcome"] == "identical", digest["divergence"]
        assert digest["divergence"] is None

    def test_crash_is_classified_not_raised(self, monkeypatch):
        monkeypatch.setattr(fuzz, "_run_scenario_engine",
                            lambda scenario, engine: (_ for _ in ()).throw(
                                AssertionError("injected fault")))
        scenario = generate_scenarios(1, seed=2)[0][0]
        digest = run_fuzz_scenario(scenario.to_json())
        assert digest["outcome"] == "crash"
        assert digest["crash"] == {"type": "AssertionError",
                                   "message": "injected fault"}

    def test_one_sided_crash_is_a_divergence(self, monkeypatch):
        real = fuzz._run_scenario_engine

        def broken(scenario, engine):
            if engine == "batch":
                raise RuntimeError("batch only")
            return real(scenario, engine)

        monkeypatch.setattr(fuzz, "_run_scenario_engine", broken)
        scenario = FuzzScenario(config=FuzzConfig(),
                                schedule=OpSchedule(ops=(
                                    KernelOpSpec("mmap", 0, {"pages": 4}),)))
        digest = run_fuzz_scenario(scenario.to_json())
        assert digest["outcome"] == "divergence"
        assert digest["divergence"]["field"] == "crash"
        assert digest["divergence"]["legacy_value"] == "ok"


# --------------------------------------------------------------------- #
# Acceptance: sensitivity proof
# --------------------------------------------------------------------- #
class TestSensitivityProof:
    def test_broken_shootdown_is_found_shrunk_and_banked(self, monkeypatch, tmp_path):
        """With kernel TLB shootdowns deliberately unhooked (the PR 4
        harness-sensitivity toggle), a seeded budget-bounded fuzz run must
        find the divergence, shrink it to <= 8 ops, and bank a reproducer
        that fails under the broken build and passes under the fixed one."""
        monkeypatch.setattr(MimicOS, "register_tlb_listener",
                            lambda self, listener: None)
        summary = fuzz.run_fuzz(budget=6, seed=2025, workers=2,
                                corpus_dir=tmp_path, bank=True)
        assert summary["divergences"], (
            "fuzzer failed to find the stale-TLB divergence within budget")
        assert summary["reproducers"]
        entries, skipped = corpus.load_corpus(tmp_path)
        assert skipped == 0
        assert len(entries) == len(set(summary["reproducers"]))
        for _path, entry in entries:
            assert len(entry["scenario"]["ops"]) <= 8
            assert entry["divergence"] is not None
            assert entry["rng_state"]  # generator cursor at schedule start
            # Still under the broken build: the reproducer must fail.
            assert fuzz.replay_entry(entry)["outcome"] == "divergence"
        monkeypatch.undo()  # back to the fixed build
        for _path, entry in entries:
            assert fuzz.replay_entry(entry)["outcome"] == "identical"


# --------------------------------------------------------------------- #
# Acceptance: determinism and SIGKILL resume
# --------------------------------------------------------------------- #
class TestDeterminismAndResume:
    def test_fixed_seed_run_is_deterministic_across_worker_counts(self):
        first = fuzz.run_fuzz(budget=4, seed=31, workers=1, bank=False,
                              shrink=False)
        second = fuzz.run_fuzz(budget=4, seed=31, workers=2, bank=False,
                               shrink=False)
        assert _stable(first) == _stable(second)
        assert first["coverage"] == second["coverage"]
        assert first["reproducers"] == second["reproducers"]

    def test_campaign_resumes_from_store_after_sigkill(self, tmp_path):
        store = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                             + os.pathsep + env.get("PYTHONPATH", ""))
        command = [sys.executable, "-m", "repro.validation.fuzz",
                   "--budget", "4", "--seed", "31", "--workers", "1",
                   "--no-bank", "--no-shrink", "--store", str(store)]
        process = subprocess.Popen(command, env=env, cwd=str(REPO_ROOT),
                                   stdout=subprocess.DEVNULL,
                                   stderr=subprocess.DEVNULL)
        try:
            # Let at least one scenario land in the store, then SIGKILL.
            objects = store / "objects"
            deadline = time.time() + 90
            while time.time() < deadline:
                if objects.is_dir() and any(objects.glob("*/*.json")):
                    break
                if process.poll() is not None:
                    break
                time.sleep(0.1)
            completed_before_kill = (objects.is_dir()
                                     and any(objects.glob("*/*.json")))
            if process.poll() is None:
                os.kill(process.pid, signal.SIGKILL)
        finally:
            process.wait()
        resumed = fuzz.run_fuzz(budget=4, seed=31, workers=1, bank=False,
                                shrink=False, store_root=str(store))
        reference = fuzz.run_fuzz(budget=4, seed=31, workers=1, bank=False,
                                  shrink=False)
        assert _stable(resumed) == _stable(reference)
        if completed_before_kill:
            assert resumed["service"]["cache_hits"] >= 1
