"""Tests for the TLBs, the MMU, its extensions and nested translation."""

import pytest

from repro.common.addresses import PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.common.config import CacheConfig, DRAMConfig, TLBConfig
from repro.memhier.memory_system import MemoryHierarchy
from repro.mmu.extensions import MMUExtensions
from repro.mmu.mmu import MMU
from repro.mmu.nested import NestedTranslationUnit
from repro.mmu.pom_tlb import PartOfMemoryTLB
from repro.mmu.tlb import TLB, TLBHierarchy
from repro.mmu.tlb_prefetch import SequentialTLBPrefetcher
from repro.mmu.victima import VictimaCacheTLB
from repro.pagetables.radix import RadixPageTable
from tests.conftest import FlatMemory


def make_tlb(entries=16, associativity=4, latency=1, page_sizes=(PAGE_SIZE_4K,)):
    return TLB(TLBConfig("T", entries=entries, associativity=associativity,
                         latency=latency, page_sizes=page_sizes))


def make_hierarchy():
    return TLBHierarchy(
        l1i=TLBConfig("L1I", 16, 4, 1),
        l1d_4k=TLBConfig("L1D4K", 16, 4, 1),
        l1d_2m=TLBConfig("L1D2M", 8, 4, 1, page_sizes=(PAGE_SIZE_2M,)),
        l2=TLBConfig("L2", 64, 8, 8, page_sizes=(PAGE_SIZE_4K, PAGE_SIZE_2M)),
    )


def make_memory():
    return MemoryHierarchy(
        l1_config=CacheConfig("L1", 4 * 1024, 4, 2),
        l2_config=CacheConfig("L2", 16 * 1024, 4, 8),
        l3_config=CacheConfig("L3", 64 * 1024, 8, 20),
        dram_config=DRAMConfig(capacity_bytes=1 << 30),
    )


class TestTLB:
    def test_miss_then_hit(self):
        tlb = make_tlb()
        assert tlb.lookup(0x1000) is None
        tlb.fill(0x1000, 0xA000, PAGE_SIZE_4K)
        assert tlb.lookup(0x1000) == (0xA000, PAGE_SIZE_4K)
        assert tlb.lookup(0x1FFF) == (0xA000, PAGE_SIZE_4K)

    def test_unsupported_page_size_not_cached(self):
        tlb = make_tlb(page_sizes=(PAGE_SIZE_4K,))
        tlb.fill(0x20_0000, 0xB00000, PAGE_SIZE_2M)
        assert tlb.lookup(0x20_0000) is None

    def test_lru_eviction(self):
        tlb = make_tlb(entries=4, associativity=4)
        for index in range(4):
            tlb.fill(index * PAGE_SIZE_4K * tlb.num_sets, index, PAGE_SIZE_4K)
        tlb.lookup(0)  # refresh entry 0
        tlb.fill(4 * PAGE_SIZE_4K * tlb.num_sets, 4, PAGE_SIZE_4K)
        assert tlb.lookup(0) is not None
        assert tlb.lookup(1 * PAGE_SIZE_4K * tlb.num_sets) is None

    def test_invalidate_and_flush(self):
        tlb = make_tlb()
        tlb.fill(0x1000, 0xA000, PAGE_SIZE_4K)
        tlb.invalidate(0x1000)
        assert tlb.lookup(0x1000) is None
        tlb.fill(0x1000, 0xA000, PAGE_SIZE_4K)
        tlb.flush()
        assert tlb.lookup(0x1000) is None

    def test_miss_rate(self):
        tlb = make_tlb()
        tlb.lookup(0)
        tlb.fill(0, 0, PAGE_SIZE_4K)
        tlb.lookup(0)
        assert tlb.miss_rate() == pytest.approx(0.5)


class TestTLBHierarchy:
    def test_fill_then_l1_hit(self):
        hierarchy = make_hierarchy()
        hierarchy.fill(0x1000, 0xA000, PAGE_SIZE_4K)
        result = hierarchy.lookup_data(0x1000)
        assert result.hit and result.level == "L1"

    def test_l2_hit_promotes_to_l1(self):
        hierarchy = make_hierarchy()
        hierarchy.l2.fill(0x1000, 0xA000, PAGE_SIZE_4K)
        first = hierarchy.lookup_data(0x1000)
        second = hierarchy.lookup_data(0x1000)
        assert first.level == "L2" and second.level == "L1"

    def test_miss_counts_l2_misses(self):
        hierarchy = make_hierarchy()
        assert not hierarchy.lookup_data(0x5000).hit
        assert hierarchy.l2_misses() == 1

    def test_huge_page_goes_to_2m_l1(self):
        hierarchy = make_hierarchy()
        hierarchy.fill(0x20_0000, 0xB0_0000, PAGE_SIZE_2M)
        result = hierarchy.lookup_data(0x20_0000 + 0x1234)
        assert result.hit and result.page_size == PAGE_SIZE_2M

    def test_gigabyte_translations_live_in_l2_only(self):
        hierarchy = make_hierarchy()
        hierarchy.fill(0x4000_0000, 0x8000_0000, PAGE_SIZE_1G)
        result = hierarchy.lookup_data(0x4000_0000 + 999)
        assert result.hit and result.level == "L2"

    def test_instruction_path(self):
        hierarchy = make_hierarchy()
        hierarchy.fill(0x400000, 0xC00000, PAGE_SIZE_4K, instruction=True)
        assert hierarchy.lookup_instruction(0x400000).hit

    def test_latency_accumulates_on_l2_hit(self):
        hierarchy = make_hierarchy()
        hierarchy.l2.fill(0x1000, 0xA000, PAGE_SIZE_4K)
        result = hierarchy.lookup_data(0x1000)
        assert result.latency == hierarchy.l1d_4k.latency + hierarchy.l2.latency


class TestMMU:
    def make_mmu(self, extensions=None):
        memory = make_memory()
        mmu = MMU(make_hierarchy(), memory, extensions)
        table = RadixPageTable()
        mmu.set_context(pid=1, page_table=table)
        return mmu, table, memory

    def test_requires_context(self):
        mmu = MMU(make_hierarchy(), make_memory())
        with pytest.raises(RuntimeError):
            mmu.access_data(0x1000)

    def test_tlb_hit_path(self):
        mmu, table, _ = self.make_mmu()
        table.insert(0x1000, 0xA000, PAGE_SIZE_4K)
        mmu.access_data(0x1000)   # walk + fill
        result = mmu.access_data(0x1040)
        assert result.translation.tlb_hit
        assert result.translation.physical_address == 0xA040

    def test_walk_on_tlb_miss(self):
        mmu, table, _ = self.make_mmu()
        table.insert(0x2000, 0xB000, PAGE_SIZE_4K)
        result = mmu.access_data(0x2000)
        assert result.translation.walked
        assert result.translation.physical_address == 0xB000
        assert mmu.counters.get("page_walks") == 1
        assert mmu.average_ptw_latency() > 0

    def test_page_fault_invokes_callback_and_retries(self):
        mmu, table, _ = self.make_mmu()
        calls = []

        def fault_callback(pid, vaddr):
            calls.append((pid, vaddr))
            table.insert(vaddr, 0xC000, PAGE_SIZE_4K)
            return 500, True

        mmu.set_fault_callback(fault_callback)
        result = mmu.access_data(0x3000)
        assert calls == [(1, 0x3000)]
        assert result.translation.page_fault
        assert result.translation.fault_latency == 500
        assert result.translation.physical_address == 0xC000

    def test_unhandled_fault_is_segfault(self):
        mmu, _, _ = self.make_mmu()
        mmu.set_fault_callback(lambda pid, vaddr: (0, False))
        result = mmu.access_data(0x9000)
        assert result.translation.segfault

    def test_missing_callback_is_segfault(self):
        mmu, _, _ = self.make_mmu()
        result = mmu.access_data(0x9000)
        assert result.translation.segfault

    def test_instruction_access(self):
        mmu, table, _ = self.make_mmu()
        table.insert(0x400000, 0xD000, PAGE_SIZE_4K)
        result = mmu.access_instruction(0x400000)
        assert result.translation.physical_address == 0xD000

    def test_data_access_uses_memory_hierarchy(self):
        mmu, table, memory = self.make_mmu()
        table.insert(0x5000, 0xE000, PAGE_SIZE_4K)
        result = mmu.access_data(0x5000)
        assert result.data_latency > 0
        assert memory.counters.get("requests_data") == 1

    def test_stats_shape(self):
        mmu, table, _ = self.make_mmu()
        table.insert(0x1000, 0xA000, PAGE_SIZE_4K)
        mmu.access_data(0x1000)
        stats = mmu.stats()
        assert "counters" in stats and "tlbs" in stats and "avg_ptw_latency" in stats


class TestMMUExtensions:
    def test_pom_tlb_hit_avoids_walk(self):
        memory = make_memory()
        mmu = MMU(make_hierarchy(), memory, MMUExtensions(pom_tlb=True))
        table = RadixPageTable()
        mmu.set_context(1, table)
        table.insert(0x1000, 0xA000, PAGE_SIZE_4K)
        mmu.access_data(0x1000)            # walk, fills POM-TLB and L2 TLB
        mmu.tlbs.flush()                   # force on-chip TLB misses
        mmu.access_data(0x1000)
        assert mmu.counters.get("pom_tlb_hits") == 1
        assert mmu.counters.get("page_walks") == 1

    def test_victima_stores_and_serves_victims(self):
        memory = make_memory()
        mmu = MMU(make_hierarchy(), memory, MMUExtensions(victima=True))
        table = RadixPageTable()
        mmu.set_context(1, table)
        # Install far more translations than the (64-entry) L2 TLB holds.
        for index in range(200):
            virtual = 0x7F00_0000_0000 + index * PAGE_SIZE_4K
            table.insert(virtual, index * PAGE_SIZE_4K, PAGE_SIZE_4K)
            mmu.access_data(virtual)
        assert mmu.victima.counters.get("victims_stored") > 0

    def test_tlb_prefetch_installs_next_page(self):
        memory = make_memory()
        mmu = MMU(make_hierarchy(), memory, MMUExtensions(tlb_prefetch=True))
        table = RadixPageTable()
        mmu.set_context(1, table)
        table.insert(0x1000, 0xA000, PAGE_SIZE_4K)
        table.insert(0x2000, 0xB000, PAGE_SIZE_4K)
        mmu.access_data(0x1000)
        # The next page's translation was prefetched into the L2 TLB.
        assert mmu.tlbs.l2.lookup(0x2000) is not None

    def test_prefetcher_standalone(self):
        prefetcher = SequentialTLBPrefetcher(degree=2)
        table = RadixPageTable()
        hierarchy = make_hierarchy()
        table.insert(0x2000, 0xB000, PAGE_SIZE_4K)
        count = prefetcher.on_fill(0x1000, PAGE_SIZE_4K, table, hierarchy)
        assert count == 1

    def test_pom_tlb_standalone(self):
        memory = make_memory()
        pom = PartOfMemoryTLB(entries=1024)
        pom.fill(0x1000, 0xA000, memory)
        entry, latency = pom.lookup(0x1000, memory)
        assert entry == (0xA000, PAGE_SIZE_4K)
        assert latency > 0
        assert pom.hit_rate() == 1.0

    def test_victima_standalone(self):
        memory = make_memory()
        victima = VictimaCacheTLB(memory.l2)
        victima.store_victim(0x1000, 0xA000, PAGE_SIZE_4K)
        entry, _ = victima.lookup(0x1000)
        assert entry == (0xA000, PAGE_SIZE_4K)


class TestNestedTranslation:
    def test_two_dimensional_walk(self):
        guest = RadixPageTable()
        host = RadixPageTable()
        guest_virtual = 0x7F00_0000_0000
        guest_physical = 0x10_0000
        host_physical = 0x90_0000
        guest.insert(guest_virtual, guest_physical, PAGE_SIZE_4K)
        host.insert(guest_physical, host_physical, PAGE_SIZE_4K)
        unit = NestedTranslationUnit(guest, host)
        memory = FlatMemory()
        result = unit.walk(guest_virtual, memory)
        assert result.found
        assert result.host_physical_base == host_physical
        # The 2-D walk costs far more accesses than a single 4-level walk.
        assert result.memory_accesses > 4

    def test_nested_tlb_caches_translation(self):
        guest, host = RadixPageTable(), RadixPageTable()
        guest.insert(0x1000, 0x20_0000, PAGE_SIZE_4K)
        host.insert(0x20_0000, 0x30_0000, PAGE_SIZE_4K)
        unit = NestedTranslationUnit(guest, host)
        memory = FlatMemory()
        unit.walk(0x1000, memory)
        cached = unit.walk(0x1000, memory)
        assert cached.memory_accesses == 0
        assert unit.counters.get("nested_tlb_hits") == 1

    def test_guest_fault_propagates(self):
        unit = NestedTranslationUnit(RadixPageTable(), RadixPageTable())
        result = unit.walk(0x4000, FlatMemory())
        assert not result.found and result.guest_fault

    def test_mmu_uses_nested_unit(self):
        memory = make_memory()
        mmu = MMU(make_hierarchy(), memory, MMUExtensions(nested_translation=True))
        guest, host = RadixPageTable(), RadixPageTable()
        guest.insert(0x1000, 0x20_0000, PAGE_SIZE_4K)
        host.insert(0x20_0000, 0x30_0000, PAGE_SIZE_4K)
        mmu.set_context(1, guest)
        mmu.set_nested_unit(NestedTranslationUnit(guest, host))
        result = mmu.access_data(0x1000)
        assert result.translation.physical_address == 0x30_0000
