"""Directed kernel-op interleavings across every registered page-table design.

The scenario fuzzer explores these interleavings randomly; this file pins the
three classically dangerous ones as deterministic tests so a regression in any
backend's invalidation discipline fails with a readable name instead of a
shrunk reproducer:

* munmap immediately followed by a MAP_FIXED mmap of the same range — the
  stale-translation hazard PR 4's parity sweep originally surfaced;
* THP collapse racing swap-out over the same region — collapse must never
  resurrect a translation for a page reclaim just swapped out;
* process migration with in-flight THP reservations — a context switch onto
  another core must not strand or corrupt a reserved-but-unpromoted region.
"""

from dataclasses import replace

import pytest

from repro.common.addresses import MB, PAGE_SIZE_2M, PAGE_SIZE_4K, align_up
from repro.common.config import PageTableConfig
from repro.core.virtuoso import Virtuoso
from repro.mimicos.kernel import MimicOS
from repro.pagetables.factory import registered_kinds
from tests.conftest import tiny_mimicos_config, tiny_system_config

ALL_KINDS = registered_kinds()


def booted_kernel(kind: str, **overrides) -> MimicOS:
    return MimicOS(tiny_mimicos_config(**overrides), PageTableConfig(kind=kind))


def fault_range(kernel: MimicOS, process, start: int, pages: int) -> None:
    for index in range(pages):
        address = start + index * PAGE_SIZE_4K
        if process.page_table.lookup(address) is None:
            result = kernel.handle_page_fault(process.pid, address)
            assert not result.segfault, hex(address)


def aligned_region(vma) -> int:
    """First 2 MB-aligned region base fully inside ``vma``."""
    base = align_up(vma.start, PAGE_SIZE_2M)
    assert base + PAGE_SIZE_2M <= vma.end, "VMA too small for an aligned region"
    return base


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestMunmapThenFixedMmapSameRange:
    """VA reuse: the one sequence where yesterday's translations are poison."""

    def test_reused_range_starts_cold_and_refaults_cleanly(self, kind):
        kernel = booted_kernel(kind)
        process = kernel.create_process("reuse")
        pages = 64
        vma = kernel.mmap(process, pages * PAGE_SIZE_4K)
        start, size = vma.start, vma.size
        fault_range(kernel, process, start, pages)

        removed = kernel.munmap(process, vma)
        assert removed > 0
        for index in range(pages):
            assert process.page_table.lookup(start + index * PAGE_SIZE_4K) is None

        fresh = kernel.mmap(process, size, fixed_address=start)
        assert fresh.start == start, "MAP_FIXED must reuse the exact range"
        # The new VMA starts with no translations, so touching it faults
        # again (range-granular backends may cover all pages in one fault).
        faults_before = kernel.counters.get("page_fault_requests")
        fault_range(kernel, process, start, pages)
        assert kernel.counters.get("page_fault_requests") > faults_before
        fault_range(kernel, process, start, pages)  # now fully resident again

    def test_interleaving_repeats_without_leaking_mappings(self, kind):
        kernel = booted_kernel(kind)
        process = kernel.create_process("churn")
        vma = kernel.mmap(process, 16 * PAGE_SIZE_4K)
        start, size = vma.start, vma.size
        for _ in range(4):
            fault_range(kernel, process, start, 16)
            kernel.munmap(process, vma)
            vma = kernel.mmap(process, size, fixed_address=start)
            assert vma.start == start
        assert process.page_table.lookup(start) is None


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestCollapseRacingSwapOut:
    """khugepaged collapse and forced reclaim fighting over one region."""

    def test_every_page_refaults_cleanly_after_the_race(self, kind):
        kernel = booted_kernel(kind, thp_policy="linux")
        process = kernel.create_process("racer")
        vma = kernel.mmap(process, 4 * MB)
        region = aligned_region(vma)
        pages = PAGE_SIZE_2M // PAGE_SIZE_4K
        fault_range(kernel, process, region, pages)

        reclaimed = kernel.reclaim_cold_pages(32)
        assert reclaimed > 0, "forced reclaim found nothing to swap out"
        kernel.run_khugepaged(max_regions=8)

        # Whatever interleaving of unmap/collapse won, the region must be
        # fully usable: every page either still translates or refaults.
        fault_range(kernel, process, region, pages)
        for index in range(pages):
            assert process.page_table.lookup(region + index * PAGE_SIZE_4K) \
                is not None

    def test_collapse_after_full_reclaim_of_region_is_a_noop_not_a_crash(self, kind):
        kernel = booted_kernel(kind, thp_policy="linux")
        process = kernel.create_process("drained")
        vma = kernel.mmap(process, 4 * MB)
        region = aligned_region(vma)
        fault_range(kernel, process, region, 64)
        # Reclaim more mappings than were ever created: drains everything.
        kernel.reclaim_cold_pages(10_000)
        assert process.page_table.lookup(region) is None
        kernel.run_khugepaged()
        assert process.page_table.lookup(region) is None, \
            "collapse resurrected a translation for a swapped-out page"
        fault_range(kernel, process, region, 64)


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestMigrationWithInflightReservations:
    """Core migration while a THP reservation is open but unpromoted."""

    def build_system(self, kind: str) -> Virtuoso:
        config = tiny_system_config().with_page_table(PageTableConfig(kind=kind))
        config = config.with_mimicos(replace(config.mimicos, thp_policy="cr_thp"))
        system = Virtuoso(config, seed=3)
        if getattr(system.kernel.create_process("probe").page_table,
                   "overrides_allocation", False):
            pytest.skip(f"{kind} owns physical allocation; the THP reservation "
                        "path is structurally bypassed")
        return system

    def test_reservation_survives_migration_and_keeps_placing_pages(self, kind):
        system = self.build_system(kind)
        process = system.create_process("migrant")
        vma = system.kernel.mmap(process, 4 * MB)
        region = aligned_region(vma)

        first = system.kernel.handle_page_fault(process.pid, region)
        assert not first.segfault
        policy = system.kernel.thp_policy
        assert policy.active_reservations >= 1, \
            "cr_thp should hold an unpromoted reservation after one fault"

        # Migrate mid-reservation: full TLB/translation-cache flush.
        system.mmu.migrate_in(process.pid, process.page_table)

        # The reservation still places the neighbouring 4 KB page inside the
        # same reserved 2 MB physical block, contiguously with the first.
        second = system.kernel.handle_page_fault(process.pid,
                                                 region + PAGE_SIZE_4K)
        assert not second.segfault
        assert second.physical_base == first.physical_base + PAGE_SIZE_4K
        assert policy.active_reservations >= 1
        assert process.page_table.lookup(region) is not None
        assert process.page_table.lookup(region + PAGE_SIZE_4K) is not None

    def test_reclaim_during_open_reservation_then_migrate(self, kind):
        system = self.build_system(kind)
        process = system.create_process("pressured")
        vma = system.kernel.mmap(process, 4 * MB)
        region = aligned_region(vma)
        for index in range(8):
            result = system.kernel.handle_page_fault(
                process.pid, region + index * PAGE_SIZE_4K)
            assert not result.segfault

        reclaimed = system.kernel.reclaim_cold_pages(4)
        assert reclaimed > 0
        system.mmu.migrate_in(process.pid, process.page_table)

        # Reclaimed pages refault; untouched reservation offsets still fill.
        for index in range(16):
            address = region + index * PAGE_SIZE_4K
            if process.page_table.lookup(address) is None:
                result = system.kernel.handle_page_fault(process.pid, address)
                assert not result.segfault
            assert process.page_table.lookup(address) is not None
