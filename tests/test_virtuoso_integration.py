"""End-to-end integration tests of the Virtuoso orchestrator."""

from dataclasses import replace

import pytest

from repro.common.addresses import MB, PAGE_SIZE_4K
from repro.common.config import PageTableConfig, SimulationConfig
from repro.core.virtuoso import Virtuoso
from repro.mmu.extensions import MMUExtensions
from repro.workloads import (
    GraphWorkload,
    JSONWorkload,
    LLMInferenceWorkload,
    RandomAccessWorkload,
    SequentialWorkload,
)
from tests.conftest import tiny_system_config


def small_graph(**kwargs):
    defaults = dict(footprint_bytes=8 * MB, memory_operations=1500, prefault=True)
    defaults.update(kwargs)
    return GraphWorkload("BFS", **defaults)


class TestVirtuosoRuns:
    def test_run_produces_consistent_report(self, virtuoso):
        report = virtuoso.run(small_graph())
        assert report.instructions > 0
        assert report.cycles > 0
        assert 0.0 < report.ipc < 4.0
        assert report.workload == "BFS"
        assert report.os_mode == "imitation"

    def test_prefault_installs_translations_without_faulting_in_run(self, virtuoso):
        report = virtuoso.run(small_graph())
        assert report.page_faults == 0
        assert virtuoso.counters.get("prefaulted_pages") > 0

    def test_fault_heavy_workload_injects_kernel_instructions(self, virtuoso):
        report = virtuoso.run(JSONWorkload(scale=0.2))
        assert report.page_faults > 0
        assert report.kernel_instructions > 0
        assert report.fault_latency.count == report.page_faults
        assert report.allocation_fraction_of_cycles > 0.0

    def test_max_instructions_limit(self, virtuoso):
        report = virtuoso.run(RandomAccessWorkload(footprint_bytes=4 * MB,
                                                   memory_operations=5000, prefault=True),
                              max_instructions=500)
        assert report.instructions == 500

    def test_emulation_mode_produces_no_kernel_instructions(self):
        config = tiny_system_config()
        config = config.with_simulation(SimulationConfig(os_mode="emulation"))
        system = Virtuoso(config, seed=3)
        report = system.run(JSONWorkload(scale=0.2))
        assert report.page_faults > 0
        assert report.kernel_instructions == 0

    def test_reference_mode_runs(self):
        config = tiny_system_config().with_simulation(SimulationConfig(os_mode="reference"))
        system = Virtuoso(config, seed=3)
        report = system.run(JSONWorkload(scale=0.2))
        assert report.page_faults > 0
        assert report.fault_latency.count > 0

    def test_determinism_same_seed_same_result(self):
        def run_once():
            system = Virtuoso(tiny_system_config(), seed=11)
            return system.run(RandomAccessWorkload(footprint_bytes=4 * MB,
                                                   memory_operations=1000, seed=5))
        first, second = run_once(), run_once()
        assert first.cycles == second.cycles
        assert first.instructions == second.instructions
        assert first.l2_tlb_misses == second.l2_tlb_misses

    def test_report_details_present(self, virtuoso):
        report = virtuoso.run(small_graph())
        assert set(report.details) >= {"mmu", "core", "kernel", "coupling", "memory"}
        summary = report.summary()
        assert summary["workload"] == "BFS"

    def test_mmu_extensions_can_be_enabled(self):
        system = Virtuoso(tiny_system_config(), seed=1,
                          mmu_extensions=MMUExtensions(tlb_prefetch=True))
        report = system.run(SequentialWorkload(footprint_bytes=4 * MB,
                                               memory_operations=2000, prefault=True))
        assert report.instructions > 0
        assert system.mmu.tlb_prefetcher is not None


class TestPageTableVariants:
    @pytest.mark.parametrize("kind", ["radix", "ech", "hdc", "ht", "utopia", "rmm"])
    def test_every_translation_scheme_runs_end_to_end(self, kind):
        config = tiny_system_config()
        config = config.with_page_table(PageTableConfig(kind=kind))
        system = Virtuoso(config, seed=2)
        report = system.run(RandomAccessWorkload(footprint_bytes=4 * MB,
                                                 memory_operations=800))
        assert report.instructions > 0
        assert report.cycles > 0

    @pytest.mark.parametrize("kind", ["midgard", "vbi"])
    def test_intermediate_address_schemes_run(self, kind):
        config = tiny_system_config().with_page_table(PageTableConfig(kind=kind))
        system = Virtuoso(config, seed=2)
        report = system.run(RandomAccessWorkload(footprint_bytes=4 * MB,
                                                 memory_operations=800))
        assert report.instructions > 0
        if kind == "midgard":
            assert report.frontend_translation_cycles > 0

    def test_hash_pt_needs_fewer_walk_accesses_than_radix(self):
        def run(page_table_config):
            config = tiny_system_config()
            config = replace(config, mimicos=replace(config.mimicos, thp_policy="bd"))
            config = config.with_page_table(page_table_config)
            system = Virtuoso(config, seed=4)
            workload = RandomAccessWorkload(footprint_bytes=32 * MB,
                                            memory_operations=3000, prefault=True, seed=9)
            return system.run(workload)

        # Scale the page-walk caches down with the scaled footprint so radix
        # behaves as it does at full scale (upper levels frequently missing).
        radix = run(PageTableConfig(kind="radix", pwc_entries=4, pwc_associativity=4))
        hdc = run(PageTableConfig(kind="hdc"))
        assert radix.page_walks > 0 and hdc.page_walks > 0
        radix_accesses = radix.details["mmu"]["counters"]["ptw_memory_accesses"] / radix.page_walks
        hdc_accesses = hdc.details["mmu"]["counters"]["ptw_memory_accesses"] / hdc.page_walks
        assert hdc_accesses < radix_accesses


class TestWorkloadBehaviours:
    def test_llm_workload_allocation_dominated(self, virtuoso):
        report = virtuoso.run(LLMInferenceWorkload("Bagel", scale=0.3))
        assert report.page_faults > 0
        assert report.allocation_fraction_of_cycles > report.translation_fraction_of_cycles

    def test_random_access_has_higher_tlb_mpki_than_sequential(self):
        def run(workload):
            system = Virtuoso(tiny_system_config(), seed=6)
            return system.run(workload)

        random_report = run(RandomAccessWorkload(footprint_bytes=16 * MB,
                                                 memory_operations=4000, prefault=True))
        sequential_report = run(SequentialWorkload(footprint_bytes=16 * MB,
                                                   memory_operations=4000, prefault=True))
        assert random_report.l2_tlb_mpki > sequential_report.l2_tlb_mpki

    def test_graph_bc_creates_many_small_vmas(self, virtuoso):
        process = virtuoso.map_workload(GraphWorkload("BC", footprint_bytes=8 * MB,
                                                      memory_operations=100))
        histogram = process.vmas.size_histogram()
        assert sum(histogram.values()) >= 100
